"""Tests for repro.config: Table I presets and derived quantities."""

from __future__ import annotations

import math

import pytest

from repro.config import (
    AcousticConfig,
    SystemConfig,
    TransducerConfig,
    VolumeConfig,
    paper_system,
    small_system,
    tiny_system,
)


class TestAcousticConfig:
    def test_wavelength_matches_table1(self):
        acoustic = AcousticConfig()
        assert acoustic.wavelength == pytest.approx(0.385e-3, rel=1e-6)

    def test_sampling_period(self):
        acoustic = AcousticConfig()
        assert acoustic.sampling_period == pytest.approx(31.25e-9)

    def test_samples_per_wavelength(self):
        acoustic = AcousticConfig()
        assert acoustic.samples_per_wavelength == pytest.approx(8.0)

    def test_seconds_samples_roundtrip(self):
        acoustic = AcousticConfig()
        assert acoustic.samples_to_seconds(
            acoustic.seconds_to_samples(1.234e-6)) == pytest.approx(1.234e-6)


class TestTransducerConfig:
    def test_paper_element_count(self):
        assert paper_system().transducer.element_count == 10_000

    def test_aperture_size_close_to_50_lambda(self):
        transducer = paper_system().transducer
        # 99 gaps at lambda/2 pitch = 49.5 lambda ~= 19.06 mm.
        assert transducer.aperture_x == pytest.approx(99 * 0.385e-3 / 2, rel=1e-9)
        assert transducer.aperture_x == pytest.approx(19.06e-3, rel=1e-2)

    def test_aperture_of_single_element_is_zero(self):
        config = TransducerConfig(elements_x=1, elements_y=1)
        assert config.aperture_x == 0.0
        assert config.aperture_y == 0.0


class TestVolumeConfig:
    def test_paper_focal_point_count(self):
        assert paper_system().volume.focal_point_count == 128 * 128 * 1000

    def test_paper_scanline_count(self):
        assert paper_system().volume.scanline_count == 128 * 128

    def test_depth_span_positive(self):
        volume = paper_system().volume
        assert volume.depth_span > 0
        assert volume.depth_span == pytest.approx(
            volume.depth_max - volume.depth_min)


class TestSystemConfigDerived:
    def test_theoretical_delay_count_is_164e9(self):
        system = paper_system()
        assert system.theoretical_delay_count == 128 * 128 * 1000 * 100 * 100
        assert system.theoretical_delay_count == pytest.approx(1.64e11, rel=0.01)

    def test_required_delay_rate_is_2_5e12(self):
        system = paper_system()
        assert system.delay_throughput_required == pytest.approx(2.46e12, rel=0.01)

    def test_echo_buffer_slightly_more_than_8000_samples(self):
        system = paper_system()
        assert 8000 <= system.echo_buffer_samples <= 8200

    def test_delay_index_needs_13_bits(self):
        assert paper_system().delay_index_bits == 13

    def test_max_round_trip_time_sub_millisecond(self):
        system = paper_system()
        assert 0 < system.max_round_trip_time < 1e-3

    def test_presets_validate(self):
        for preset in (paper_system(), small_system(), tiny_system()):
            preset.validate()

    def test_preset_names(self):
        assert paper_system().name == "paper"
        assert small_system().name == "small"
        assert tiny_system().name == "tiny"


class TestConfigModification:
    def test_with_volume_changes_only_volume(self):
        system = small_system()
        modified = system.with_volume(n_depth=32)
        assert modified.volume.n_depth == 32
        assert modified.volume.n_theta == system.volume.n_theta
        assert modified.transducer == system.transducer

    def test_with_transducer(self):
        system = small_system()
        modified = system.with_transducer(elements_x=4, elements_y=4)
        assert modified.transducer.element_count == 16

    def test_with_acoustic(self):
        system = small_system()
        modified = system.with_acoustic(sampling_frequency=64e6)
        assert modified.acoustic.sampling_frequency == 64e6
        assert modified.echo_buffer_samples > system.echo_buffer_samples

    def test_with_beamformer(self):
        system = small_system()
        modified = system.with_beamformer(frame_rate=30.0)
        assert modified.beamformer.frame_rate == 30.0
        assert modified.delay_throughput_required == pytest.approx(
            2 * system.delay_throughput_required)

    def test_original_untouched_by_with_methods(self):
        system = small_system()
        system.with_volume(n_depth=5)
        assert system.volume.n_depth == 64


class TestValidation:
    def test_negative_speed_of_sound_rejected(self):
        system = small_system().with_acoustic(speed_of_sound=-1.0)
        with pytest.raises(ValueError):
            system.validate()

    def test_zero_elements_rejected(self):
        system = small_system().with_transducer(elements_x=0)
        with pytest.raises(ValueError):
            system.validate()

    def test_negative_pitch_rejected(self):
        system = small_system().with_transducer(pitch=-0.1)
        with pytest.raises(ValueError):
            system.validate()

    def test_depth_ordering_enforced(self):
        system = small_system().with_volume(depth_min=0.1, depth_max=0.05)
        with pytest.raises(ValueError):
            system.validate()

    def test_zero_depth_min_rejected(self):
        system = small_system().with_volume(depth_min=0.0)
        with pytest.raises(ValueError):
            system.validate()

    def test_theta_max_out_of_range_rejected(self):
        system = small_system().with_volume(theta_max=math.pi)
        with pytest.raises(ValueError):
            system.validate()

    def test_zero_frame_rate_rejected(self):
        system = small_system().with_beamformer(frame_rate=0.0)
        with pytest.raises(ValueError):
            system.validate()

    def test_zero_insonifications_rejected(self):
        system = small_system().with_beamformer(insonifications_per_volume=0)
        with pytest.raises(ValueError):
            system.validate()


class TestCacheKey:
    def test_deterministic_across_instances(self):
        assert small_system().cache_key() == small_system().cache_key()

    def test_name_does_not_affect_key(self):
        import dataclasses
        renamed = dataclasses.replace(small_system(), name="renamed")
        assert renamed.cache_key() == small_system().cache_key()

    def test_physical_change_changes_key(self):
        base = small_system()
        assert base.with_volume(n_depth=32).cache_key() != base.cache_key()
        assert base.with_transducer(elements_x=8).cache_key() != base.cache_key()
        assert base.with_acoustic(
            sampling_frequency=40e6).cache_key() != base.cache_key()

    def test_key_is_filename_safe_hex(self):
        key = small_system().cache_key()
        assert len(key) == 16
        assert all(c in "0123456789abcdef" for c in key)


class TestPresetsRegistry:
    def test_presets_mapping_covers_all_factories(self):
        from repro.config import PRESETS
        assert set(PRESETS) == {"paper", "small", "tiny"}
        assert PRESETS["tiny"]() == tiny_system()

    def test_get_preset_builds_named_system(self):
        from repro.config import get_preset
        assert get_preset("small") == small_system()
        assert get_preset("paper").name == "paper"

    def test_get_preset_unknown_lists_names(self):
        from repro.config import get_preset
        with pytest.raises(ValueError, match="paper, small, tiny"):
            get_preset("gigantic")


class TestSystemConfigDictRoundTrip:
    def test_roundtrip_preserves_equality(self):
        for system in (paper_system(), small_system(), tiny_system()):
            rebuilt = SystemConfig.from_dict(system.to_dict())
            assert rebuilt == system
            assert rebuilt.cache_key() == system.cache_key()

    def test_roundtrip_through_json(self):
        import json
        system = tiny_system().with_volume(n_depth=24)
        rebuilt = SystemConfig.from_dict(json.loads(
            json.dumps(system.to_dict())))
        assert rebuilt == system

    def test_missing_sections_default(self):
        system = SystemConfig.from_dict({"name": "bare"})
        assert system == SystemConfig(name="bare")

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown system config section"):
            SystemConfig.from_dict({"acoustics": {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="bad 'acoustic' section"):
            SystemConfig.from_dict({"acoustic": {"speed": 1}})

    def test_invalid_values_still_validated(self):
        data = tiny_system().to_dict()
        data["volume"]["depth_max"] = 0.0
        with pytest.raises(ValueError):
            SystemConfig.from_dict(data)
