"""Tests for repro.hardware.resources: cost models and the full-table baseline."""

from __future__ import annotations

import pytest

from repro.config import paper_system
from repro.hardware.device import virtex7_xc7vx1140t
from repro.hardware.resources import (
    FullTableBaseline,
    ResourceDemand,
    TableFreeCostModel,
    TableSteerCostModel,
)


class TestResourceDemand:
    def test_scaled(self):
        demand = ResourceDemand(luts=10, registers=20, bram_bits=30, dsp_slices=1)
        scaled = demand.scaled(3)
        assert (scaled.luts, scaled.registers, scaled.bram_bits,
                scaled.dsp_slices) == (30, 60, 90, 3)

    def test_plus(self):
        a = ResourceDemand(luts=1, registers=2, bram_bits=3)
        b = ResourceDemand(luts=10, registers=20, bram_bits=30, dsp_slices=5)
        total = a.plus(b)
        assert (total.luts, total.registers, total.bram_bits,
                total.dsp_slices) == (11, 22, 33, 5)


class TestTableFreeCostModel:
    def test_42x42_fits_virtex7(self):
        """The calibrated model reproduces the paper's largest single-chip
        design point: a 42 x 42 aperture."""
        model = TableFreeCostModel()
        device = virtex7_xc7vx1140t()
        assert model.max_square_aperture(device.luts) == 42

    def test_full_aperture_demand_exceeds_device(self):
        model = TableFreeCostModel()
        device = virtex7_xc7vx1140t()
        demand = model.demand(10_000)
        assert not device.fits(luts=demand.luts)

    def test_register_utilization_near_paper(self):
        model = TableFreeCostModel()
        device = virtex7_xc7vx1140t()
        demand = model.demand(42 * 42)
        registers_pct = demand.registers / device.registers
        assert registers_pct == pytest.approx(0.23, abs=0.03)

    def test_no_bram_demand(self):
        demand = TableFreeCostModel().demand(1000)
        assert demand.bram_bits == 0

    def test_max_units_monotone_in_budget(self):
        model = TableFreeCostModel()
        assert model.max_units(2_000_000) > model.max_units(500_000)

    def test_zero_budget(self):
        assert TableFreeCostModel().max_units(0) == 0


class TestTableSteerCostModel:
    def test_adders_per_block_matches_paper(self):
        """8 x-corrections and 16 y-corrections require 8 + 16*8 = 136 adders."""
        assert TableSteerCostModel().adders_per_block(8, 16) == 136

    def test_block_demand_scales_with_bits(self):
        model = TableSteerCostModel()
        demand14 = model.block_demand(14, 8, 16)
        demand18 = model.block_demand(18, 8, 16)
        assert demand18.luts > demand14.luts
        assert demand18.registers > demand14.registers
        assert demand18.bram_bits > demand14.bram_bits

    def test_paper_lut_utilization_14_and_18_bits(self):
        """91 % (14-bit) and ~100 % (18-bit) LUTs on the XC7VX1140T."""
        model = TableSteerCostModel()
        device = virtex7_xc7vx1140t()
        demand14 = model.demand(14, 128, 8, 16, correction_storage_bits=0)
        demand18 = model.demand(18, 128, 8, 16, correction_storage_bits=0)
        assert demand14.luts / device.luts == pytest.approx(0.91, abs=0.03)
        assert demand18.luts / device.luts == pytest.approx(1.00, abs=0.03)

    def test_paper_register_utilization(self):
        model = TableSteerCostModel()
        device = virtex7_xc7vx1140t()
        demand14 = model.demand(14, 128, 8, 16, correction_storage_bits=0)
        demand18 = model.demand(18, 128, 8, 16, correction_storage_bits=0)
        assert demand14.registers / device.registers == pytest.approx(0.25, abs=0.03)
        assert demand18.registers / device.registers == pytest.approx(0.30, abs=0.03)

    def test_delays_per_cycle(self):
        assert TableSteerCostModel().delays_per_cycle(128, 8, 16) == 128 * 128

    def test_correction_storage_adds_bram_only(self):
        model = TableSteerCostModel()
        without = model.demand(18, 128, 8, 16, correction_storage_bits=0)
        with_corr = model.demand(18, 128, 8, 16, correction_storage_bits=1e6)
        assert with_corr.bram_bits == pytest.approx(without.bram_bits + 1e6)
        assert with_corr.luts == without.luts


class TestFullTableBaseline:
    def test_coefficient_count_is_164e9(self):
        baseline = FullTableBaseline()
        assert baseline.coefficient_count(paper_system()) == pytest.approx(
            1.64e11, rel=0.01)

    def test_storage_hundreds_of_gigabytes(self):
        baseline = FullTableBaseline()
        storage_gb = baseline.storage_bytes(paper_system()) / 1e9
        assert 200 < storage_gb < 400

    def test_bandwidth_terabytes_per_second(self):
        baseline = FullTableBaseline()
        bandwidth = baseline.access_bandwidth_bytes_per_second(paper_system())
        assert bandwidth > 1e12

    def test_delay_rate_is_2_5e12(self):
        baseline = FullTableBaseline()
        assert baseline.delay_rate_per_second(paper_system()) == pytest.approx(
            2.46e12, rel=0.01)

    def test_wider_coefficients_cost_more(self):
        system = paper_system()
        narrow = FullTableBaseline(bits_per_coefficient=13)
        wide = FullTableBaseline(bits_per_coefficient=18)
        assert wide.storage_bytes(system) > narrow.storage_bytes(system)
