"""Tests for repro.io: delay-table export / import."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference_table import ReferenceDelayTable
from repro.core.steering import SteeringCorrections
from repro.core.tablesteer import TableSteerConfig, TableSteerDelayGenerator
from repro.io import (
    export_bram_initialisation,
    export_tablesteer_tables,
    load_tablesteer_tables,
)


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    from repro.config import tiny_system
    system = tiny_system()
    path = tmp_path_factory.mktemp("tables") / "tiny_18b.npz"
    exported = export_tablesteer_tables(system, path, total_bits=18)
    return system, path, exported


class TestExport:
    def test_file_written(self, archive):
        _system, path, _exported = archive
        assert path.exists()
        assert path.stat().st_size > 0

    def test_raw_codes_fit_declared_width(self, archive):
        _system, _path, exported = archive
        assert exported.reference_raw.max() <= exported.reference_format.max_raw
        assert exported.reference_raw.min() >= 0
        assert exported.x_terms_raw.max() <= exported.correction_format.max_raw
        assert exported.x_terms_raw.min() >= exported.correction_format.min_raw

    def test_reference_matches_quantised_table(self, archive):
        system, _path, exported = archive
        table = ReferenceDelayTable.build(system)
        np.testing.assert_allclose(
            exported.reference_samples,
            table.quantized_quadrant(exported.reference_format))

    def test_correction_terms_match_generator(self, archive):
        system, _path, exported = archive
        corrections = SteeringCorrections.build(system)
        from repro.fixedpoint.quantize import quantize
        np.testing.assert_allclose(
            exported.x_terms_samples,
            quantize(corrections.x_terms, exported.correction_format))

    def test_storage_bits_consistent_with_formats(self, archive):
        _system, _path, exported = archive
        expected = (exported.reference_raw.size * 18
                    + (exported.x_terms_raw.size + exported.y_terms_raw.size) * 18)
        assert exported.storage_bits() == expected


class TestLoad:
    def test_roundtrip_identical_codes(self, archive):
        _system, path, exported = archive
        loaded = load_tablesteer_tables(path)
        np.testing.assert_array_equal(loaded.reference_raw, exported.reference_raw)
        np.testing.assert_array_equal(loaded.x_terms_raw, exported.x_terms_raw)
        np.testing.assert_array_equal(loaded.y_terms_raw, exported.y_terms_raw)
        assert loaded.total_bits == exported.total_bits
        assert loaded.system_name == exported.system_name
        assert loaded.grid_shape == exported.grid_shape

    def test_loaded_values_usable_for_delay_generation(self, archive):
        """Delays rebuilt from the archive match the in-memory generator."""
        system, path, _exported = archive
        loaded = load_tablesteer_tables(path)
        generator = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=18))
        i_theta, i_phi, i_depth = 1, 2, 3
        reference_full = generator.reference.lookup(i_depth)
        # Rebuild the same slice from the archived quadrant by symmetry.
        quadrant = loaded.reference_samples[:, :, i_depth]
        expanded = quadrant[generator.reference.quadrant_x_index]
        expanded = expanded[:, generator.reference.quadrant_y_index]
        plane = (loaded.x_terms_samples[:, i_theta, i_phi][:, None]
                 + loaded.y_terms_samples[:, i_phi][None, :])
        rebuilt = expanded + plane
        direct = generator.grid_delay_samples(i_theta, i_phi, i_depth)
        np.testing.assert_allclose(rebuilt.ravel(), direct, atol=1e-9)

    def test_14_bit_export(self, tmp_path):
        from repro.config import tiny_system
        system = tiny_system()
        path = tmp_path / "tiny_14b.npz"
        exported = export_tablesteer_tables(system, path, total_bits=14)
        loaded = load_tablesteer_tables(path)
        assert loaded.total_bits == 14
        assert loaded.reference_format.fraction_bits == 1
        assert loaded.reference_raw.dtype == np.uint16

    def test_version_check(self, tmp_path, archive):
        _system, path, _exported = archive
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        bad_path = tmp_path / "bad.npz"
        np.savez_compressed(bad_path, **data)
        with pytest.raises(ValueError):
            load_tablesteer_tables(bad_path)


class TestBramInitialisation:
    def test_bank_count_and_size(self, archive):
        _system, _path, exported = archive
        banks = export_bram_initialisation(exported, n_banks=8, bank_words=32)
        assert len(banks) == 8
        assert all(bank.shape == (32,) for bank in banks)

    def test_staggering_interleaves_consecutive_words(self, archive):
        _system, _path, exported = archive
        banks = export_bram_initialisation(exported, n_banks=4, bank_words=16)
        flat = exported.reference_raw.reshape(-1)
        # Word k of the chunk lands in bank k % 4 at position k // 4.
        for k in range(16):
            assert banks[k % 4][k // 4] == flat[k]

    def test_invalid_geometry_rejected(self, archive):
        _system, _path, exported = archive
        with pytest.raises(ValueError):
            export_bram_initialisation(exported, n_banks=0)
