"""Tests for repro.observability: tracing, metrics, exporters, bench gate.

Pins the PR's two contracts:

* observability is *observation only* — a traced run is bit-identical to
  an untraced run across backends, schemes and the quantized kernel path;
* disabled instrumentation is near-free — the shared ``NULL_TRACER``
  costs one method call per span site.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import EngineSpec, ScanSpec, Session
from repro.observability import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullTracer,
    Tracer,
    get_default_tracer,
    parse_prometheus,
    render_prometheus,
    render_runtime_stats,
    render_span_summary,
    render_span_tree,
    resolve_tracer,
    spans_from_jsonl,
    spans_to_jsonl,
    summarize_spans,
    use_tracer,
    write_metrics,
    write_trace,
)
from repro.observability.benchgate import (
    DEFAULT_THRESHOLD,
    compare_benchmarks,
    main as benchgate_main,
)


# ------------------------------------------------------------------ tracer
class TestTracer:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", bytes=128) as span:
            span.set(rows=4)
        assert span.duration > 0.0
        assert span.attributes == {"bytes": 128, "rows": 4}
        assert tracer.span_count == 1

    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("frame"):
            with tracer.span("simulate"):
                pass
            with tracer.span("beamform"):
                with tracer.span("gather"):
                    pass
        (root,) = tracer.roots
        assert root.name == "frame"
        assert [child.name for child in root.children] == ["simulate",
                                                           "beamform"]
        assert [span.name for span, _ in root.walk()] == [
            "frame", "simulate", "beamform", "gather"]
        assert root.children[1].children[0].name == "gather"

    def test_walk_depths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [(span.name, depth) for span, depth in tracer.walk()] == [
            ("a", 0), ("b", 1), ("c", 2)]

    def test_find_collects_matching_spans(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("frame"):
                with tracer.span("gather"):
                    pass
        assert len(tracer.find("gather")) == 3
        assert tracer.find("missing") == []

    def test_sibling_roots_and_reset(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        assert [root.name for root in tracer.roots] == ["one", "two"]
        assert tracer.total_seconds == pytest.approx(
            sum(root.duration for root in tracer.roots))
        tracer.reset()
        assert tracer.roots == ()
        assert tracer.span_count == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.duration > 0.0
        assert root.children[0].duration > 0.0
        # The stack unwound: a new span is a fresh root, not a child.
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "after"]

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.002)
        (root,) = tracer.roots
        assert root.self_seconds == pytest.approx(
            root.duration - root.children[0].duration)

    def test_worker_thread_spans_become_extra_roots(self):
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()

        def work(i):
            with tracer.span("shard", index=i):
                pass

        with tracer.span("execute"):
            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(work, range(4)))
        names = sorted(root.name for root in tracer.roots)
        assert names.count("execute") == 1
        assert names.count("shard") == 4


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("work", bytes=1) as span:
            span.set(more=2)
        assert tracer.roots == ()
        assert tracer.span_count == 0
        assert tracer.total_seconds == 0.0
        assert tracer.find("work") == []
        assert list(tracer.walk()) == []

    def test_disabled_overhead_is_bounded(self):
        """The no-op span site must stay within ~3x of a bare function call.

        Generous bound: this is a smoke test against accidentally making
        the disabled path allocate or lock, not a microbenchmark.
        """
        n = 20_000

        def bare():
            for _ in range(n):
                pass

        def traced():
            for _ in range(n):
                with NULL_TRACER.span("x"):
                    pass

        bare()
        traced()  # warm up
        t0 = time.perf_counter()
        bare()
        bare_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        traced()
        traced_seconds = time.perf_counter() - t0
        # Per-iteration cost under 3 microseconds: orders of magnitude
        # below any kernel stage the span would wrap.
        assert (traced_seconds - bare_seconds) / n < 3e-6

    def test_resolve_and_default(self):
        assert resolve_tracer(None) is get_default_tracer()
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        with use_tracer(tracer):
            assert get_default_tracer() is tracer
            assert resolve_tracer(None) is tracer
        assert isinstance(get_default_tracer(), NullTracer)


# ----------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError):
            counter.inc(-1.0)
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_percentiles_match_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=0.01, size=257)
        histogram = Histogram("h")
        for value in samples:
            histogram.observe(float(value))
        for q in (50.0, 95.0, 99.0, 12.5):
            assert histogram.percentile(q) == float(
                np.percentile(samples, q))
        assert histogram.count == samples.size
        assert histogram.sum == pytest.approx(samples.sum())
        assert histogram.mean == pytest.approx(samples.mean())
        assert histogram.min == samples.min()
        assert histogram.max == samples.max()
        summary = histogram.summary()
        assert summary["p95"] == float(np.percentile(samples, 95.0))

    def test_empty_histogram_is_all_zero(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.max == 0.0
        assert histogram.percentile(95.0) == 0.0
        assert histogram.summary()["p50"] == 0.0

    def test_registry_get_or_create_and_type_collision(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames_total", "frames")
        assert registry.counter("frames_total") is counter
        with pytest.raises(MetricError):
            registry.gauge("frames_total")
        assert "frames_total" in registry
        assert registry.get("missing") is None
        assert len(registry) == 1

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2.0
        assert snapshot["g"] == 1.5
        assert snapshot["h"]["count"] == 1

    def test_merge_adopts_by_reference(self):
        source = MetricsRegistry()
        counter = source.counter("shared_total")
        counter.inc()
        target = MetricsRegistry()
        target.counter("own_total").inc(5)
        target.merge(source)
        assert target.get("shared_total") is counter
        counter.inc()  # live: later increments visible through the target
        assert target.counter("shared_total").value == 2.0
        # Existing names are kept, not overwritten.
        other = MetricsRegistry()
        other.counter("own_total").inc(99)
        target.merge(other)
        assert target.counter("own_total").value == 5.0


# --------------------------------------------------------------- exporters
class TestExporters:
    @pytest.fixture()
    def traced(self):
        tracer = Tracer()
        with tracer.span("frame", frame_id=0):
            with tracer.span("beamform"):
                with tracer.span("gather") as span:
                    span.set(bytes=4096)
                with tracer.span("accumulate"):
                    pass
        with tracer.span("frame", frame_id=1):
            pass
        return tracer

    def test_jsonl_round_trip(self, traced):
        text = spans_to_jsonl(traced)
        lines = [json.loads(line) for line in text.splitlines()]
        assert [line["depth"] for line in lines] == [0, 1, 2, 2, 0]
        roots = spans_from_jsonl(text)
        assert [root.name for root in roots] == ["frame", "frame"]
        original = [(span.name, depth, span.attributes,
                     span.start, span.duration)
                    for root in traced.roots for span, depth in root.walk()]
        rebuilt = [(span.name, depth, span.attributes,
                    span.start, span.duration)
                   for root in roots for span, depth in root.walk()]
        assert rebuilt == original

    def test_jsonl_rejects_orphans_and_garbage(self):
        orphan = json.dumps({"name": "x", "depth": 2})
        with pytest.raises(ValueError, match="no parent"):
            spans_from_jsonl(orphan)
        with pytest.raises(ValueError, match="not valid JSON"):
            spans_from_jsonl("{broken")

    def test_write_trace(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, traced)
        assert [root.name for root in
                spans_from_jsonl(path.read_text())] == ["frame", "frame"]

    def test_render_span_tree(self, traced):
        tree = render_span_tree(traced)
        assert "gather" in tree and "bytes=4096" in tree
        pruned = render_span_tree(traced, max_depth=1)
        assert "gather" not in pruned and "beamform" in pruned
        assert render_span_tree(Tracer()) == "(no spans recorded)"

    def test_summarize_spans(self, traced):
        summary = summarize_spans(traced)
        assert summary["frame"]["count"] == 2
        assert summary["frame"]["share"] == pytest.approx(1.0)
        assert summary["gather"]["count"] == 1
        assert "gather" in render_span_summary(traced)
        assert render_span_summary(Tracer()) == "(no spans recorded)"

    def test_prometheus_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("frames_total", "frames seen").inc(8)
        registry.gauge("fps").set(42.5)
        latency = registry.histogram("latency_seconds")
        for value in (0.01, 0.02, 0.04):
            latency.observe(value)
        text = render_prometheus(registry)
        assert "# TYPE frames_total counter" in text
        assert "# TYPE latency_seconds summary" in text
        samples = parse_prometheus(text)
        assert samples["frames_total"] == 8.0
        assert samples["fps"] == 42.5
        assert samples['latency_seconds{quantile="0.95"}'] == \
            pytest.approx(latency.percentile(95.0))
        assert samples["latency_seconds_count"] == 3.0
        assert samples["latency_seconds_sum"] == pytest.approx(0.07)
        path = tmp_path / "metrics.prom"
        write_metrics(path, registry)
        assert parse_prometheus(path.read_text()) == samples

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a sample"):
            parse_prometheus("frames_total not-a-number")


# ------------------------------------------------- traced == untraced
@pytest.mark.conformance
class TestBitIdentity:
    """Tracing must never perturb a computed sample."""

    CASES = [
        ("reference", "focused", None),
        ("vectorized", "focused", None),
        ("sharded", "focused", None),
        ("vectorized", "planewave", None),
        ("vectorized", "focused", 18),  # quantized kernel path
    ]

    @pytest.mark.parametrize("backend,scheme,qformat", CASES)
    def test_traced_stream_is_bit_identical(self, backend, scheme, qformat):
        def volumes(trace: bool) -> list[np.ndarray]:
            spec = EngineSpec(system="tiny", architecture="tablesteer",
                              backend=backend, scheme=scheme,
                              quantization=qformat, trace=trace)
            session = Session(spec)
            service = session.service()
            frames = ScanSpec(scenario="moving_point",
                              frames=3).build_frames(session.system)
            results = [service.submit_frame(frame.phantom, seed=frame.seed)
                       for frame in frames]
            return [result.rf for result in results]

        for traced, untraced in zip(volumes(True), volumes(False)):
            np.testing.assert_array_equal(traced, untraced)


# ------------------------------------------------------- service metrics
class TestServiceObservability:
    @pytest.fixture()
    def session(self):
        return Session(EngineSpec(system="tiny", architecture="tablesteer",
                                  backend="vectorized", trace=True))

    def test_stats_percentiles_match_numpy(self, session, tiny_channel_data):
        service = session.service()
        for _ in range(6):
            service.submit_frame(tiny_channel_data)
        stats = service.stats()
        latencies = service.metrics.get("service_latency_seconds").values
        assert stats.p50_latency_seconds == float(
            np.percentile(latencies, 50.0))
        assert stats.p95_latency_seconds == float(
            np.percentile(latencies, 95.0))
        assert stats.p99_latency_seconds == float(
            np.percentile(latencies, 99.0))
        assert stats.p50_latency_seconds <= stats.p95_latency_seconds \
            <= stats.p99_latency_seconds <= stats.max_latency_seconds

    def test_empty_and_reset_stats_are_zero(self, session,
                                            tiny_channel_data):
        service = session.service()
        stats = service.stats()
        assert stats.frames == 0
        assert stats.mean_latency_seconds == 0.0
        assert stats.p99_latency_seconds == 0.0
        service.submit_frame(tiny_channel_data)
        service.reset_stats()
        stats = service.stats()
        assert stats.frames == 0
        assert stats.p50_latency_seconds == 0.0
        # The plan cache survives a stats reset.
        assert stats.cache.misses == 1

    def test_span_taxonomy(self, session, tiny_channel_data):
        service = session.service()
        service.submit_frame(tiny_channel_data)
        (frame,) = session.tracer.find("frame")
        assert [child.name for child in frame.children] == ["beamform"]
        names = {span.name for span, _ in frame.walk()}
        assert {"frame", "beamform", "compile", "execute",
                "gather", "weights", "accumulate"} <= names
        (compile_span,) = session.tracer.find("compile")
        assert compile_span.attributes["bytes"] > 0
        (gather,) = session.tracer.find("gather")
        assert gather.attributes["bytes"] > 0
        # A second frame hits the plan cache: no new compile span.
        service.submit_frame(tiny_channel_data)
        assert len(session.tracer.find("compile")) == 1
        assert len(session.tracer.find("frame")) == 2

    def test_export_metrics(self, session, tiny_channel_data):
        service = session.service()
        service.submit_frame(tiny_channel_data)
        exported = service.export_metrics()
        snapshot = exported.snapshot()
        assert snapshot["service_frames_total"] == 1.0
        assert snapshot["plan_cache_misses_total"] == 1.0
        assert snapshot["service_frames_per_second"] > 0.0
        assert snapshot["service_latency_seconds"]["count"] == 1
        # Renders cleanly end to end.
        assert "service_frames_total 1" in render_prometheus(exported)

    def test_untraced_session_records_no_spans(self, tiny_channel_data):
        session = Session(EngineSpec(system="tiny",
                                     architecture="tablesteer"))
        session.service().submit_frame(tiny_channel_data)
        assert session.tracer.span_count == 0

    def test_render_runtime_stats(self, session, tiny_channel_data):
        service = session.service()
        service.submit_frame(tiny_channel_data)
        block = render_runtime_stats(service.stats())
        assert "latency p50 / p95 / p99" in block
        assert "hit rate" in block


class TestSpecTraceField:
    def test_round_trip_and_validation(self):
        spec = EngineSpec(system="tiny", trace=True)
        assert spec.to_dict()["trace"] is True
        assert EngineSpec.from_dict(spec.to_dict()).trace is True
        assert EngineSpec(system="tiny").trace is False
        with pytest.raises(ValueError, match="trace"):
            EngineSpec(system="tiny", trace="yes")


# -------------------------------------------------------------- bench gate
def _bench_table(vps: float, batched_vps: float, system: str = "tiny"):
    return {
        "system": system,
        "backends": {
            "vectorized": {
                "float32": {"voxels_per_second": vps,
                            "batched_voxels_per_second": batched_vps},
            },
            "reference": {
                "float32": {"voxels_per_second": 1.0,
                            "batched_voxels_per_second": 1.0},
            },
        },
    }


class TestBenchGate:
    def test_identical_tables_pass(self):
        table = _bench_table(1e6, 2e6)
        report, regressions = compare_benchmarks(table, table)
        assert regressions == []
        assert len(report) == 2  # two gated metrics, vectorized only

    def test_drop_beyond_threshold_is_flagged(self):
        baseline = _bench_table(1e6, 2e6)
        fresh = _bench_table(0.5e6, 2e6)
        _, regressions = compare_benchmarks(baseline, fresh)
        assert len(regressions) == 1
        assert "voxels_per_second" in regressions[0]

    def test_drop_within_threshold_passes(self):
        baseline = _bench_table(1e6, 2e6)
        fresh = _bench_table((1 - DEFAULT_THRESHOLD + 0.01) * 1e6, 2e6)
        _, regressions = compare_benchmarks(baseline, fresh)
        assert regressions == []

    def test_improvement_never_flags(self):
        _, regressions = compare_benchmarks(_bench_table(1e6, 2e6),
                                            _bench_table(5e6, 9e6))
        assert regressions == []

    def test_system_mismatch_raises(self):
        with pytest.raises(ValueError, match="system mismatch"):
            compare_benchmarks(_bench_table(1e6, 2e6, system="small"),
                               _bench_table(1e6, 2e6, system="tiny"))

    def test_bad_threshold_raises(self):
        table = _bench_table(1e6, 2e6)
        for threshold in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError, match="threshold"):
                compare_benchmarks(table, table, threshold=threshold)

    def test_missing_fresh_row_reported_not_gated(self):
        baseline = _bench_table(1e6, 2e6)
        fresh = _bench_table(1e6, 2e6)
        del fresh["backends"]["vectorized"]["float32"]
        report, regressions = compare_benchmarks(baseline, fresh)
        assert regressions == []
        assert any("missing" in line for line in report)

    def test_cli_warn_mode_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(_bench_table(1e6, 2e6)))
        fresh.write_text(json.dumps(_bench_table(0.1e6, 2e6)))
        assert benchgate_main([str(baseline), str(fresh)]) == 0
        assert "WARN" in capsys.readouterr().out

    def test_cli_strict_mode_fails(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(_bench_table(1e6, 2e6)))
        fresh.write_text(json.dumps(_bench_table(0.1e6, 2e6)))
        assert benchgate_main([str(baseline), str(fresh)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_cli_mismatch_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(_bench_table(1e6, 2e6,
                                                    system="small")))
        fresh.write_text(json.dumps(_bench_table(1e6, 2e6)))
        assert benchgate_main([str(baseline), str(fresh)]) == 2

    def test_committed_baseline_gates_itself(self):
        from pathlib import Path
        baseline_path = Path(__file__).resolve().parent.parent \
            / "BENCH_runtime.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["system"] == "small"
        report, regressions = compare_benchmarks(baseline, baseline)
        assert regressions == []
        assert report  # the gated rows exist in the committed table
