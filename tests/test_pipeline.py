"""Tests for repro.pipeline: the high-level imaging pipeline and compounding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.phantom import point_target
from repro.config import tiny_system
from repro.core.multi_origin import OriginSchedule
from repro.pipeline.compounding import (
    InsonificationPlan,
    acquisition_summary,
    compound_volume,
)
from repro.pipeline.imaging import (
    DelayArchitecture,
    ImagingPipeline,
    compare_architectures,
    make_delay_provider,
)


@pytest.fixture(scope="module")
def system():
    return tiny_system()


@pytest.fixture(scope="module")
def centred_target(system):
    from repro.geometry.volume import FocalGrid
    grid = FocalGrid.from_config(system)
    return point_target(depth=float(grid.depths[len(grid.depths) // 2]))


class TestMakeDelayProvider:
    @pytest.mark.parametrize("architecture", ["exact", "tablefree", "tablesteer",
                                              "tablesteer_float"])
    def test_provider_construction(self, system, architecture):
        with pytest.warns(DeprecationWarning, match="make_delay_provider"):
            provider = make_delay_provider(system, architecture)
        points = np.array([[0.0, 0.0, 0.01]])
        delays = provider.delays_samples(points)
        assert delays.shape == (1, system.transducer.element_count)

    def test_enum_and_string_equivalent(self, system):
        with pytest.warns(DeprecationWarning):
            a = make_delay_provider(system, DelayArchitecture.TABLEFREE)
            b = make_delay_provider(system, "tablefree")
        assert type(a) is type(b)

    def test_unknown_architecture_rejected(self, system):
        with pytest.raises(ValueError), \
                pytest.warns(DeprecationWarning):
            make_delay_provider(system, "magic")

    def test_registry_path_does_not_warn(self, system, recwarn):
        from repro.architectures import ARCHITECTURES
        ARCHITECTURES.create("exact", system)
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestImagingPipeline:
    def test_image_phantom_roundtrip(self, system, centred_target):
        pipeline = ImagingPipeline(system, architecture="exact")
        image = pipeline.image_phantom(centred_target)
        assert image.shape == (system.volume.n_theta, system.volume.n_depth)
        assert image.max() > 0

    def test_log_compressed_output_range(self, system, centred_target):
        pipeline = ImagingPipeline(system, architecture="exact")
        data = pipeline.acquire(centred_target)
        db_image = pipeline.image_plane(data, dynamic_range_db=50.0)
        assert db_image.max() == pytest.approx(0.0)
        assert db_image.min() >= -50.0

    def test_volume_orders_agree(self, system, centred_target):
        pipeline = ImagingPipeline(system, architecture="tablesteer")
        data = pipeline.acquire(centred_target)
        nappe = pipeline.image_volume(data, order="nappe")
        scanline = pipeline.image_volume(data, order="scanline")
        np.testing.assert_allclose(nappe.rf, scanline.rf)

    def test_bad_order_rejected(self, system, centred_target):
        pipeline = ImagingPipeline(system)
        data = pipeline.acquire(centred_target)
        with pytest.raises(ValueError):
            pipeline.image_volume(data, order="diagonal")

    def test_architecture_accessible(self, system):
        pipeline = ImagingPipeline(system, architecture="tablefree")
        from repro.core.tablefree import TableFreeDelayGenerator
        assert isinstance(pipeline.delay_provider, TableFreeDelayGenerator)

    def test_noise_changes_image(self, system, centred_target):
        pipeline = ImagingPipeline(system)
        clean = pipeline.image_phantom(centred_target, noise_std=0.0)
        noisy = pipeline.image_phantom(centred_target, noise_std=0.5, seed=3)
        assert not np.allclose(clean, noisy)


class TestPipelineBackends:
    @pytest.mark.parametrize("backend", ["vectorized", "sharded"])
    def test_runtime_backend_matches_reference(self, system, centred_target,
                                               backend):
        reference = ImagingPipeline(system, architecture="tablefree")
        data = reference.acquire(centred_target)
        want = reference.image_volume(data, order="scanline")
        batched = ImagingPipeline(system, architecture="tablefree",
                                  backend=backend)
        got = batched.image_volume(data)
        assert got.order == backend
        np.testing.assert_allclose(got.rf, want.rf, rtol=0, atol=1e-9)

    def test_backend_shares_cache(self, system, centred_target):
        from repro.runtime import DelayTableCache
        cache = DelayTableCache()
        pipeline = ImagingPipeline(system, backend="vectorized", cache=cache)
        data = pipeline.acquire(centred_target)
        pipeline.image_volume(data)
        pipeline.image_volume(data)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_unknown_backend_rejected(self, system):
        with pytest.raises(ValueError):
            ImagingPipeline(system, backend="quantum")

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_precision_respected_by_every_backend(self, system,
                                                  centred_target, backend):
        from repro.kernels import Precision
        pipeline = ImagingPipeline(system, backend=backend,
                                   precision="float32")
        data = pipeline.acquire(centred_target)
        volume = pipeline.image_volume(data)
        assert volume.rf.dtype == np.float32
        exact = ImagingPipeline(system, backend=backend)
        Precision.FLOAT32.tolerance.assert_allclose(
            volume.rf, exact.image_volume(data).rf)

    def test_shared_objects_are_reused(self, system):
        from repro.acoustics.echo import EchoSimulator
        from repro.geometry.transducer import MatrixTransducer
        from repro.geometry.volume import FocalGrid
        simulator = EchoSimulator.from_config(system)
        transducer = MatrixTransducer.from_config(system)
        grid = FocalGrid.from_config(system)
        pipeline = ImagingPipeline(system, simulator=simulator,
                                   transducer=transducer, grid=grid)
        assert pipeline._simulator is simulator
        assert pipeline.beamformer.transducer is transducer
        assert pipeline.beamformer.grid is grid


class TestRegistryIntegration:
    def test_architecture_options_override_legacy_knobs(self, system):
        from repro.core.tablesteer import TableSteerConfig
        pipeline = ImagingPipeline(
            system, architecture="tablesteer",
            architecture_options=TableSteerConfig(total_bits=13))
        assert pipeline.delay_provider.design.total_bits == 13
        as_dict = ImagingPipeline(system, architecture="tablesteer",
                                  architecture_options={"total_bits": 13})
        assert as_dict.delay_provider.design.total_bits == 13

    def test_legacy_knobs_still_honoured(self, system):
        from repro.core.tablefree import TableFreeConfig
        pipeline = ImagingPipeline(
            system, architecture="tablefree",
            tablefree_config=TableFreeConfig(delta=0.5))
        assert pipeline.delay_provider.design.delta == 0.5
        steer = ImagingPipeline(system, architecture="tablesteer",
                                tablesteer_bits=14)
        assert steer.delay_provider.design.total_bits == 14

    def test_deprecation_shims_still_import(self):
        # Historical public entry points must keep importing and working.
        from repro.pipeline import (  # noqa: F401
            DelayArchitecture,
            compare_architectures,
            make_delay_provider,
        )
        from repro.pipeline.imaging import (  # noqa: F401
            architecture_name,
        )
        from repro.runtime import BACKEND_NAMES, make_backend  # noqa: F401
        assert architecture_name(DelayArchitecture.EXACT) == "exact"
        assert set(BACKEND_NAMES) == {"reference", "vectorized", "sharded",
                                      "compiled"}


class TestCompareArchitectures:
    def test_shim_emits_deprecation_warning(self, system, centred_target):
        with pytest.warns(DeprecationWarning, match="compare_architectures"):
            compare_architectures(system, centred_target,
                                  architectures=("exact",))

    def test_all_requested_architectures_present(self, system, centred_target):
        with pytest.warns(DeprecationWarning):
            images = compare_architectures(system, centred_target,
                                           architectures=("exact", "tablesteer"))
        assert set(images) == {"exact", "tablesteer"}

    def test_images_similar_across_architectures(self, system, centred_target):
        with pytest.warns(DeprecationWarning):
            images = compare_architectures(system, centred_target)
        reference = images["exact"]
        for name, image in images.items():
            assert image.shape == reference.shape
            peak_ref = np.unravel_index(np.argmax(reference), reference.shape)
            peak_img = np.unravel_index(np.argmax(image), image.shape)
            assert abs(peak_ref[1] - peak_img[1]) <= 1, name


class TestInsonificationPlan:
    def test_default_plan_covers_all_scanlines(self, system):
        plan = InsonificationPlan.from_system(system)
        covered = np.concatenate(plan.scanline_groups)
        assert len(covered) == system.volume.scanline_count
        assert len(np.unique(covered)) == system.volume.scanline_count

    def test_insonification_count_capped_by_scanlines(self, system):
        plan = InsonificationPlan.from_system(system, insonifications=10_000)
        assert plan.insonification_count <= system.volume.scanline_count

    def test_origin_cycling(self, system):
        schedule = OriginSchedule.translated_subapertures(system, count=2)
        plan = InsonificationPlan.from_system(system, schedule=schedule,
                                              insonifications=4)
        np.testing.assert_allclose(plan.origin_for(0), plan.origin_for(2))
        assert not np.allclose(plan.origin_for(0), plan.origin_for(1))

    def test_scanlines_per_insonification(self, system):
        plan = InsonificationPlan.from_system(system, insonifications=4)
        assert plan.scanlines_per_insonification() == pytest.approx(
            system.volume.scanline_count / 4)

    def test_acquisition_summary_paper_arithmetic(self):
        from repro.config import paper_system
        system = paper_system()
        plan = InsonificationPlan.from_system(system)
        summary = acquisition_summary(system, plan)
        assert summary["insonifications_per_second"] == pytest.approx(960.0)
        assert summary["scanlines_per_insonification"] == pytest.approx(256.0)
        assert summary["delay_values_per_second"] == pytest.approx(2.46e12,
                                                                   rel=0.01)


class TestCompoundVolume:
    def test_single_origin_compound_matches_plain_reconstruction(self, system,
                                                                 centred_target):
        plan = InsonificationPlan.from_system(system, insonifications=2)
        compounded = compound_volume(system, centred_target, plan)
        pipeline = ImagingPipeline(system, architecture="exact")
        data = pipeline.acquire(centred_target)
        direct = pipeline.image_volume(data, order="scanline")
        np.testing.assert_allclose(compounded, direct.rf)

    def test_multi_origin_compound_produces_focused_volume(self, system,
                                                           centred_target):
        schedule = OriginSchedule.translated_subapertures(system, count=2)
        plan = InsonificationPlan.from_system(system, schedule=schedule,
                                              insonifications=2)
        volume = compound_volume(system, centred_target, plan)
        assert volume.shape == (system.volume.n_theta, system.volume.n_phi,
                                system.volume.n_depth)
        # The brightest voxel sits at the target depth index.
        depth_profile = np.max(np.abs(volume), axis=(0, 1))
        assert abs(int(np.argmax(depth_profile))
                   - system.volume.n_depth // 2) <= 1
