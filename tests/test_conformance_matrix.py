"""Cross-layer conformance matrix: backend x batching x scheme x precision.

One suite that pins **every execution path** against the reference oracle
for **every registered transmit scheme**:

* ``float64`` volumes must be *bit-identical* across the three NumPy
  execution backends and both batching modes, for every scheme — the
  compounding layer adds per-firing volumes in a fixed event order, so any
  divergence localises to a kernel/backend/batching change;
* the ``compiled`` backend (numba hosts only) is held to the pinned
  :data:`repro.kernels.TOLERANCES` ``FLOAT64`` row instead — its fused
  kernels pin NumPy's scalar pairwise-sum base case, which matches
  ``np.sum`` bitwise up to 128 elements and differs only in association
  order beyond (see ``docs/kernels.md``); its per-frame and batched
  volumes must still be bit-identical to *each other*;
* ``float32`` volumes must match the ``float64`` oracle within the pinned
  :data:`repro.kernels.TOLERANCES`;
* quantized (18-bit) volumes must be bit-identical across the NumPy
  backends and batching against the quantized reference oracle, and sit
  within a documented coarse tolerance of the float oracle; the
  ``compiled`` backend must *reject* quantized engines explicitly.

The suite is marked ``conformance`` so CI runs it as its own matrix job
(``pytest -m conformance``) while the fast unit job deselects it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EngineSpec, ScanSpec, Session
from repro.kernels import (
    TOLERANCES,
    Precision,
    numba_available,
    plan_storage_bytes,
)
from repro.runtime.cache import PlanCache

pytestmark = pytest.mark.conformance

#: scheme name -> options keeping the tiny-system matrix fast.
SCHEMES_UNDER_TEST = {
    "focused": None,
    "planewave": {"n_angles": 3},
    "synthetic_aperture": {"every": 16},
    "diverging": {"count": 2},
}

NUMPY_BACKENDS = ("reference", "vectorized", "sharded")
requires_numba = pytest.mark.skipif(
    not numba_available(),
    reason="numba not installed (compiled backend unavailable)")
BACKENDS_UNDER_TEST = NUMPY_BACKENDS + (
    pytest.param("compiled", marks=requires_numba),)
BATCH_MODES = ("per_frame", "batched")

#: Quantized-vs-float coarse equivalence: the 18-bit datapath rounds
#: samples/weights/delays, so the compounded volume may move by a few
#: percent of peak — but never more (same pin philosophy as TOLERANCES).
QUANTIZED_VS_FLOAT_ATOL = 0.05

#: A quarter of the tiny system's untiled plan — forces every tiled cell
#: to stream the sweep through four budget-sized segments.
TILE_BUDGET = plan_storage_bytes(8 * 8 * 16, 64, "float64") // 4


@pytest.fixture(scope="module")
def matrix(tiny):
    """Per-scheme shared substrates: session, firings and oracles.

    The channel data are acquired once per scheme; every backend/batching
    cell beamforms the identical firings, so differences can only come
    from execution strategy.
    """
    cells = {}
    for scheme, options in SCHEMES_UNDER_TEST.items():
        spec = EngineSpec(system="tiny", architecture="tablesteer",
                          architecture_options={"total_bits": 18},
                          scheme=scheme, scheme_options=options)
        session = Session(spec)
        frame = ScanSpec(scenario="static_point",
                         frames=1).build_frames(session.system)[0]
        firings = session.acquire_firings(frame.phantom)
        oracle = session.pipeline(backend="reference") \
            .compound_volume(firings).rf
        oracle_quantized = session.pipeline(
            backend="reference", quantization=18).compound_volume(firings).rf
        cells[scheme] = (session, firings, oracle, oracle_quantized)
    return cells


def _volume(session, firings, backend, batch_mode, **pipeline_kwargs):
    pipeline = session.pipeline(backend=backend, **pipeline_kwargs)
    if batch_mode == "per_frame":
        return pipeline.compound_volume(firings).rf
    batch = pipeline.compound_batch([firings, firings])
    np.testing.assert_array_equal(batch[0], batch[1])
    return batch[0]


@pytest.mark.parametrize("batch_mode", BATCH_MODES)
@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_float64_bit_identical(matrix, scheme, backend, batch_mode):
    """Every backend and batching mode reproduces the oracle bit for bit —
    except ``compiled``, which is held to the pinned FLOAT64 tolerance row
    (its fused reduction matches np.sum's association order only up to 128
    elements; the pin is documented in docs/kernels.md)."""
    session, firings, oracle, _ = matrix[scheme]
    volume = _volume(session, firings, backend, batch_mode)
    assert volume.dtype == np.float64
    if backend == "compiled":
        TOLERANCES[Precision.FLOAT64].assert_allclose(volume, oracle)
    else:
        np.testing.assert_array_equal(volume, oracle)


@requires_numba
@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_compiled_batched_equals_per_frame(matrix, scheme):
    """The compiled backend's batched path must be bit-identical to its
    per-frame path (the kernel bodies are textually identical per point),
    even though both are only tolerance-close to the NumPy oracle."""
    session, firings, oracle, _ = matrix[scheme]
    per_frame = _volume(session, firings, "compiled", "per_frame")
    batched = _volume(session, firings, "compiled", "batched")
    np.testing.assert_array_equal(per_frame, batched)


@pytest.mark.parametrize("batch_mode", BATCH_MODES)
@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_float32_within_pinned_tolerance(matrix, scheme, backend, batch_mode):
    """float32 execution stays inside the pinned TOLERANCES table."""
    session, firings, oracle, _ = matrix[scheme]
    volume = _volume(session, firings, backend, batch_mode,
                     precision="float32")
    assert volume.dtype == np.float32
    TOLERANCES[Precision.FLOAT32].assert_allclose(volume, oracle)


@pytest.mark.parametrize("batch_mode", BATCH_MODES)
@pytest.mark.parametrize("backend", NUMPY_BACKENDS)
@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_quantized_bit_identical_and_near_float(matrix, scheme, backend,
                                                batch_mode):
    """The 18-bit datapath is bit-true across execution paths and lands
    within the documented coarse envelope of the float oracle."""
    session, firings, oracle, oracle_quantized = matrix[scheme]
    volume = _volume(session, firings, backend, batch_mode, quantization=18)
    np.testing.assert_array_equal(volume, oracle_quantized)
    peak = float(np.max(np.abs(oracle))) or 1.0
    assert np.max(np.abs(volume - oracle)) <= QUANTIZED_VS_FLOAT_ATOL * peak


@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_compiled_rejects_quantized_engines(matrix, scheme):
    """The compiled backend refuses quantized execution with a clear error
    (the bit-true rounding stages run on the NumPy plan only).  Registered
    name, not numba, gates this — it must hold on numba-free hosts too."""
    session, _, _, _ = matrix[scheme]
    with pytest.raises(ValueError, match="quantized"):
        session.pipeline(backend="compiled", quantization=18)


@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_service_stream_matches_pipeline(matrix, scheme):
    """The streaming service (per-frame and batched) reproduces the same
    compounded bits as the pipeline path."""
    session, firings, oracle, _ = matrix[scheme]
    per_frame = session.service(backend="vectorized") \
        .submit_frame(tuple(firings) if len(firings) > 1 else firings[0])
    np.testing.assert_array_equal(per_frame.rf, oracle)
    batched = session.service(backend="vectorized").submit_batch(
        [tuple(firings) if len(firings) > 1 else firings[0]] * 2)
    np.testing.assert_array_equal(batched[0].rf, oracle)
    np.testing.assert_array_equal(batched[1].rf, oracle)


@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_server_matches_pipeline_under_concurrent_load(matrix, scheme):
    """The multi-stream server adds queueing and transport, never
    arithmetic: with drops disabled (lossless ``block`` policy), every
    frame served to every concurrent session is bit-identical to the
    pipeline oracle."""
    session, firings, oracle, _ = matrix[scheme]
    payload = tuple(firings) if len(firings) > 1 else firings[0]
    server = session.server(workers=2)  # block policy: lossless
    try:
        handles = [server.open_session() for _ in range(4)]
        tickets = [handle.submit(payload)
                   for _ in range(2) for handle in handles]
        for ticket in tickets:
            volume = ticket.result(timeout=120).rf
            assert volume.dtype == np.float64
            np.testing.assert_array_equal(volume, oracle)
        assert server.stats().drops == 0
    finally:
        server.close()


# -------------------------------------------------------- tiled execution
@pytest.mark.parametrize("batch_mode", BATCH_MODES)
@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_tiled_float64_bit_identical(matrix, scheme, backend, batch_mode):
    """Memory-budgeted tiled execution never changes the bits: every
    backend and batching mode under a four-tile budget reproduces its own
    untiled volume exactly (the NumPy backends therefore also reproduce
    the reference oracle), and the resident segment bytes never exceed
    the budget."""
    session, firings, oracle, _ = matrix[scheme]
    cache = PlanCache()  # private: keeps the byte bound out of the module cache
    volume = _volume(session, firings, backend, batch_mode,
                     memory_budget_bytes=TILE_BUDGET, cache=cache)
    assert volume.dtype == np.float64
    if backend == "compiled":
        # compiled is tolerance-close to the NumPy oracle, but its tiled
        # sweep must still be bit-identical to its own untiled sweep.
        untiled = _volume(session, firings, "compiled", batch_mode)
        np.testing.assert_array_equal(volume, untiled)
        TOLERANCES[Precision.FLOAT64].assert_allclose(volume, oracle)
    else:
        np.testing.assert_array_equal(volume, oracle)
    if backend != "reference":  # reference validates the budget, never tiles
        assert 0 < cache.stats.peak_bytes <= TILE_BUDGET


@pytest.mark.parametrize("batch_mode", BATCH_MODES)
@pytest.mark.parametrize("backend", NUMPY_BACKENDS)
@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_tiled_quantized_bit_identical(matrix, scheme, backend, batch_mode):
    """The bit-true 18-bit datapath survives tiling unchanged: quantized
    tiled volumes equal the quantized reference oracle bit for bit."""
    session, firings, _, oracle_quantized = matrix[scheme]
    volume = _volume(session, firings, backend, batch_mode, quantization=18,
                     memory_budget_bytes=TILE_BUDGET, cache=PlanCache())
    np.testing.assert_array_equal(volume, oracle_quantized)


@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_tiled_service_stream_matches_pipeline(matrix, scheme):
    """The streaming service under a memory budget reproduces the untiled
    pipeline oracle bit for bit."""
    session, firings, oracle, _ = matrix[scheme]
    payload = tuple(firings) if len(firings) > 1 else firings[0]
    service = session.service(backend="vectorized",
                              memory_budget_bytes=TILE_BUDGET,
                              cache=PlanCache())
    result = service.submit_frame(payload)
    np.testing.assert_array_equal(result.rf, oracle)


@pytest.mark.parametrize("scheme", sorted(SCHEMES_UNDER_TEST))
def test_tiled_server_matches_pipeline(matrix, scheme):
    """A server whose sessions run under a per-session memory budget
    serves volumes bit-identical to the untiled pipeline oracle, with the
    session cache's peak resident plan bytes inside the budget."""
    _, firings, oracle, _ = matrix[scheme]
    payload = tuple(firings) if len(firings) > 1 else firings[0]
    spec = EngineSpec(system="tiny", architecture="tablesteer",
                      architecture_options={"total_bits": 18},
                      backend="vectorized", scheme=scheme,
                      scheme_options=SCHEMES_UNDER_TEST[scheme],
                      memory_budget_bytes=TILE_BUDGET)
    with Session(spec) as tiled_session:
        server = tiled_session.server(workers=2)
        handles = [server.open_session() for _ in range(2)]
        tickets = [handle.submit(payload) for handle in handles]
        for ticket in tickets:
            np.testing.assert_array_equal(ticket.result(timeout=120).rf,
                                          oracle)
        assert server.stats().drops == 0
        assert 0 < tiled_session.cache.stats.peak_bytes <= TILE_BUDGET


def test_sweep_grid_covers_matrix_from_json(tiny):
    """Acceptance: Session.sweep() runs a scenario x scheme x architecture
    grid from a single JSON spec, scored per cell."""
    session = Session(EngineSpec(system="tiny"))
    spec_json = """{
        "scenarios": ["static_point"],
        "schemes": ["focused", "planewave"],
        "architectures": ["exact", "tablesteer"],
        "backends": ["reference", "vectorized"]
    }"""
    grid = session.sweep(spec=spec_json)
    assert len(grid) == 1 * 2 * 2 * 2
    for (scenario, scheme, architecture, backend), cell in grid.items():
        assert cell["volume"].shape == session.grid.shape
        assert "metrics" in cell
    # Per (scenario, scheme, architecture), the backends are bit-identical.
    for scheme in ("focused", "planewave"):
        for architecture in ("exact", "tablesteer"):
            np.testing.assert_array_equal(
                grid[("static_point", scheme, architecture, "reference")]
                ["volume"],
                grid[("static_point", scheme, architecture, "vectorized")]
                ["volume"])
