"""Tests for repro.fixedpoint.quantize: rounding, saturation, error bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint.format import signed, unsigned
from repro.fixedpoint.quantize import (
    OverflowMode,
    RoundingMode,
    from_raw,
    quantization_error,
    quantize,
    representable,
    to_raw,
)


class TestToRaw:
    def test_integer_values_exact(self):
        fmt = unsigned(8, 4)
        assert to_raw(5.0, fmt) == 5 * 16

    def test_fractional_value(self):
        fmt = unsigned(8, 4)
        assert to_raw(1.25, fmt) == 20

    def test_rounding_nearest_half_away(self):
        fmt = unsigned(8, 0)
        assert to_raw(2.5, fmt, rounding=RoundingMode.NEAREST) == 3
        fmt_signed = signed(8, 0)
        assert to_raw(-2.5, fmt_signed, rounding=RoundingMode.NEAREST) == -3

    def test_rounding_nearest_even(self):
        fmt = unsigned(8, 0)
        assert to_raw(2.5, fmt, rounding=RoundingMode.NEAREST_EVEN) == 2
        assert to_raw(3.5, fmt, rounding=RoundingMode.NEAREST_EVEN) == 4

    def test_rounding_floor_ceil_truncate(self):
        fmt = signed(8, 0)
        assert to_raw(2.7, fmt, rounding=RoundingMode.FLOOR) == 2
        assert to_raw(-2.7, fmt, rounding=RoundingMode.FLOOR) == -3
        assert to_raw(2.2, fmt, rounding=RoundingMode.CEIL) == 3
        assert to_raw(-2.7, fmt, rounding=RoundingMode.TRUNCATE) == -2

    def test_saturation_high(self):
        fmt = unsigned(4, 0)
        assert to_raw(100.0, fmt, overflow=OverflowMode.SATURATE) == 15

    def test_saturation_low_unsigned(self):
        fmt = unsigned(4, 0)
        assert to_raw(-3.0, fmt, overflow=OverflowMode.SATURATE) == 0

    def test_saturation_signed(self):
        fmt = signed(4, 0)
        assert to_raw(-100.0, fmt, overflow=OverflowMode.SATURATE) == -16
        assert to_raw(100.0, fmt, overflow=OverflowMode.SATURATE) == 15

    def test_overflow_error_mode(self):
        fmt = unsigned(4, 0)
        with pytest.raises(OverflowError):
            to_raw(100.0, fmt, overflow=OverflowMode.ERROR)

    def test_overflow_wrap_mode(self):
        fmt = unsigned(4, 0)
        assert to_raw(16.0, fmt, overflow=OverflowMode.WRAP) == 0
        assert to_raw(17.0, fmt, overflow=OverflowMode.WRAP) == 1

    def test_array_input(self):
        fmt = unsigned(8, 2)
        raw = to_raw(np.array([0.25, 0.5, 1.0]), fmt)
        assert raw.dtype == np.int64
        np.testing.assert_array_equal(raw, [1, 2, 4])


class TestRoundTrip:
    def test_from_raw_inverse_of_to_raw_on_grid(self):
        fmt = unsigned(6, 3)
        values = np.arange(0, 8, fmt.resolution)
        assert np.allclose(from_raw(to_raw(values, fmt), fmt), values)

    def test_quantize_idempotent(self):
        fmt = signed(6, 4)
        values = np.linspace(-30, 30, 101)
        once = quantize(values, fmt)
        twice = quantize(once, fmt)
        np.testing.assert_allclose(once, twice)

    def test_quantize_error_bounded_by_half_lsb(self):
        fmt = unsigned(10, 6)
        values = np.random.default_rng(0).uniform(0, 1000, 1000)
        errors = quantization_error(values, fmt)
        assert np.all(np.abs(errors) <= fmt.resolution / 2 + 1e-15)

    def test_quantize_exact_for_representable_values(self):
        fmt = signed(5, 3)
        grid = np.arange(fmt.min_value, fmt.max_value + fmt.resolution / 2,
                         fmt.resolution)
        np.testing.assert_allclose(quantize(grid, fmt), grid)


class TestRepresentable:
    def test_inside_range(self):
        fmt = unsigned(4, 2)
        assert representable(10.0, fmt)
        assert representable(0.0, fmt)

    def test_outside_range(self):
        fmt = unsigned(4, 2)
        assert not representable(16.0, fmt)
        assert not representable(-0.5, fmt)

    def test_array(self):
        fmt = signed(3, 0)
        mask = representable(np.array([-9.0, -8.0, 0.0, 7.0, 8.0]), fmt)
        np.testing.assert_array_equal(mask, [False, True, True, True, False])


class TestUnknownModes:
    def test_bad_rounding_mode(self):
        with pytest.raises(ValueError):
            to_raw(1.0, unsigned(4, 0), rounding="bogus")  # type: ignore[arg-type]

    def test_bad_overflow_mode(self):
        with pytest.raises(ValueError):
            to_raw(1.0, unsigned(4, 0), overflow="bogus")  # type: ignore[arg-type]
