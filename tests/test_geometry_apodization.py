"""Tests for repro.geometry.apodization: windows and directivity weighting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.apodization import (
    WindowType,
    aperture_apodization,
    combined_receive_weights,
    directivity_weights,
    window_1d,
)
from repro.geometry.coordinates import off_axis_angle


class TestWindow1d:
    @pytest.mark.parametrize("kind", list(WindowType))
    def test_length_and_range(self, kind):
        window = window_1d(16, kind)
        assert window.shape == (16,)
        assert np.all(window >= 0)
        assert np.all(window <= 1.0 + 1e-12)

    def test_rectangular_is_all_ones(self):
        np.testing.assert_allclose(window_1d(8, WindowType.RECTANGULAR), 1.0)

    def test_hann_tapers_to_zero(self):
        window = window_1d(32, WindowType.HANN)
        assert window[0] == pytest.approx(0.0)
        assert window[-1] == pytest.approx(0.0)
        assert window[16] > 0.9

    def test_symmetry(self):
        for kind in (WindowType.HANN, WindowType.HAMMING, WindowType.BLACKMAN,
                     WindowType.TUKEY):
            window = window_1d(21, kind)
            np.testing.assert_allclose(window, window[::-1], atol=1e-12)

    def test_length_one(self):
        np.testing.assert_allclose(window_1d(1, WindowType.HANN), [1.0])

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            window_1d(0)

    def test_tukey_limits(self):
        flat = window_1d(64, WindowType.TUKEY, tukey_alpha=0.0)
        np.testing.assert_allclose(flat, 1.0)
        hann_like = window_1d(64, WindowType.TUKEY, tukey_alpha=1.0)
        np.testing.assert_allclose(hann_like, np.hanning(64), atol=1e-12)

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            window_1d(8, "bogus")  # type: ignore[arg-type]


class TestApertureApodization:
    def test_shape_matches_transducer(self, small_transducer):
        weights = aperture_apodization(small_transducer)
        assert weights.shape == small_transducer.shape

    def test_peak_is_one(self, small_transducer):
        weights = aperture_apodization(small_transducer)
        assert weights.max() == pytest.approx(1.0)

    def test_separable_outer_product(self, small_transducer):
        weights = aperture_apodization(small_transducer, WindowType.HAMMING)
        wx = window_1d(small_transducer.config.elements_x, WindowType.HAMMING)
        wy = window_1d(small_transducer.config.elements_y, WindowType.HAMMING)
        expected = np.outer(wx, wy)
        expected /= expected.max()
        np.testing.assert_allclose(weights, expected)

    def test_rectangular_gives_uniform_weights(self, small_transducer):
        weights = aperture_apodization(small_transducer, WindowType.RECTANGULAR)
        np.testing.assert_allclose(weights, 1.0)


class TestDirectivityWeights:
    def test_on_axis_weight_is_one(self):
        assert directivity_weights(np.array([0.0]), math.radians(45))[0] == 1.0

    def test_beyond_max_angle_is_zero(self):
        weights = directivity_weights(np.array([math.radians(60)]),
                                      math.radians(45))
        assert weights[0] == 0.0

    def test_taper_region_between_zero_and_one(self):
        max_angle = math.radians(45)
        angle = math.radians(43)
        weight = directivity_weights(np.array([angle]), max_angle, rolloff=0.1)[0]
        assert 0.0 < weight < 1.0

    def test_monotone_decreasing(self):
        angles = np.linspace(0, math.radians(60), 200)
        weights = directivity_weights(angles, math.radians(45), rolloff=0.2)
        assert np.all(np.diff(weights) <= 1e-12)

    def test_negative_angles_treated_by_magnitude(self):
        max_angle = math.radians(45)
        w_pos = directivity_weights(np.array([0.3]), max_angle)
        w_neg = directivity_weights(np.array([-0.3]), max_angle)
        np.testing.assert_allclose(w_pos, w_neg)

    def test_zero_rolloff_is_hard_cutoff(self):
        max_angle = math.radians(45)
        angles = np.array([math.radians(44.9), math.radians(45.1)])
        weights = directivity_weights(angles, max_angle, rolloff=0.0)
        np.testing.assert_allclose(weights, [1.0, 0.0])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            directivity_weights(np.array([0.1]), -1.0)
        with pytest.raises(ValueError):
            directivity_weights(np.array([0.1]), 1.0, rolloff=2.0)


class TestCombinedWeights:
    def test_shape(self, small_transducer, small_grid):
        points = small_grid.scanline_points(0, 0)[:5]
        angles = off_axis_angle(points, small_transducer.positions)
        weights = combined_receive_weights(small_transducer, angles)
        assert weights.shape == (5, small_transducer.element_count)

    def test_steep_angles_suppressed(self, small_transducer):
        # A point essentially in the transducer plane, far to the side: every
        # element sees it far off-axis, so all weights must be ~0.
        point = np.array([[1.0, 0.0, 1e-6]])
        angles = off_axis_angle(point, small_transducer.positions)
        weights = combined_receive_weights(small_transducer, angles)
        assert np.all(weights < 1e-6)

    def test_broadside_point_keeps_aperture_window(self, small_transducer):
        point = np.array([[0.0, 0.0, 0.1]])
        angles = off_axis_angle(point, small_transducer.positions)
        weights = combined_receive_weights(small_transducer, angles)
        aperture = aperture_apodization(small_transducer).ravel()
        np.testing.assert_allclose(weights[0], aperture, atol=1e-9)
