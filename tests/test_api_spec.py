"""Tests for repro.api.specs: EngineSpec / ScanSpec documents and overrides."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ARCHITECTURES,
    BACKENDS,
    SCENARIOS,
    EngineSpec,
    ScanSpec,
    ShardedOptions,
    apply_overrides,
    parse_assignment,
)
from repro.beamformer.das import ApodizationSettings
from repro.beamformer.interpolation import InterpolationKind
from repro.config import SystemConfig, tiny_system
from repro.core.tablefree import TableFreeConfig
from repro.core.tablesteer import TableSteerConfig
from repro.kernels import Precision
from repro.fixedpoint.format import signed
from repro.geometry.apodization import WindowType


class TestEngineSpecValidation:
    def test_defaults_are_valid(self):
        spec = EngineSpec()
        assert spec.system == "small"
        assert spec.architecture == "exact"
        assert spec.backend == "reference"

    def test_builtin_registries_are_populated(self):
        assert set(ARCHITECTURES.names()) >= {"exact", "tablefree",
                                              "tablesteer", "tablesteer_float"}
        assert set(BACKENDS.names()) >= {"reference", "vectorized", "sharded"}
        assert set(SCENARIOS.names()) >= {"moving_point", "static_point",
                                          "speckle"}

    def test_unknown_architecture_lists_registered(self):
        with pytest.raises(ValueError, match="tablesteer_float"):
            EngineSpec(architecture="magic")

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="vectorized"):
            EngineSpec(backend="gpu")

    def test_unknown_preset_lists_presets(self):
        with pytest.raises(ValueError, match="paper, small, tiny"):
            EngineSpec(system="gigantic")

    def test_option_typo_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            EngineSpec(architecture="tablefree",
                       architecture_options={"detla": 0.5})

    def test_options_coerced_from_dicts(self):
        spec = EngineSpec(architecture="tablesteer",
                          architecture_options={"total_bits": 13},
                          backend="sharded",
                          backend_options={"shards": 2},
                          apodization={"window": "hamming"},
                          interpolation="linear")
        assert spec.architecture_options == TableSteerConfig(total_bits=13)
        assert spec.backend_options == ShardedOptions(shards=2)
        assert spec.apodization.window is WindowType.HAMMING
        assert spec.interpolation is InterpolationKind.LINEAR

    def test_bad_cache_capacity_rejected(self):
        with pytest.raises(ValueError, match="cache_capacity"):
            EngineSpec(cache_capacity=0)

    def test_precision_coerced_and_validated(self):
        assert EngineSpec().precision is Precision.FLOAT64
        assert EngineSpec(precision="float32").precision is Precision.FLOAT32
        assert EngineSpec(precision=Precision.FLOAT32).precision \
            is Precision.FLOAT32
        with pytest.raises(ValueError, match="float32"):
            EngineSpec(precision="float16")

    def test_with_updates_revalidates(self):
        spec = EngineSpec()
        assert spec.with_updates(architecture="tablefree").architecture \
            == "tablefree"
        with pytest.raises(ValueError):
            spec.with_updates(architecture="magic")


class TestEngineSpecRoundTrip:
    def test_preset_roundtrip(self):
        spec = EngineSpec(system="tiny", architecture="tablesteer",
                          architecture_options=TableSteerConfig(total_bits=14),
                          backend="sharded",
                          backend_options=ShardedOptions(shards=2),
                          apodization=ApodizationSettings(
                              window=WindowType.BLACKMAN),
                          interpolation=InterpolationKind.LINEAR,
                          precision="float32",
                          cache_capacity=2)
        assert spec.to_dict()["precision"] == "float32"
        rebuilt = EngineSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_quantization_roundtrip_and_spellings(self):
        from repro.kernels import QuantizationSpec
        spec = EngineSpec(system="tiny", quantization=18)
        assert spec.quantization == QuantizationSpec.from_total_bits(18)
        assert EngineSpec(system="tiny", quantization="U13.5") == spec
        payload = json.loads(spec.to_json())
        assert payload["quantization"]["delay_format"] == {
            "integer_bits": 13, "fraction_bits": 5, "signed": False}
        assert EngineSpec.from_json(spec.to_json()) == spec

    def test_quantization_conflicts_rejected_at_validation(self):
        with pytest.raises(ValueError, match="float64"):
            EngineSpec(system="tiny", quantization=18, precision="float32")
        with pytest.raises(ValueError, match="nearest"):
            EngineSpec(system="tiny", quantization=18,
                       interpolation="linear")

    def test_json_roundtrip_is_pure_json(self):
        spec = EngineSpec(
            system="tiny", architecture="tablefree",
            architecture_options=TableFreeConfig(
                delta=0.5, coefficient_format=signed(4, 20)))
        payload = json.loads(spec.to_json())
        assert payload["architecture_options"]["coefficient_format"] == {
            "integer_bits": 4, "fraction_bits": 20, "signed": True}
        assert EngineSpec.from_json(spec.to_json()) == spec

    def test_inline_system_roundtrip(self):
        custom = tiny_system().with_volume(n_depth=24)
        spec = EngineSpec(system=custom)
        rebuilt = EngineSpec.from_dict(json.loads(spec.to_json()))
        assert isinstance(rebuilt.system, SystemConfig)
        assert rebuilt.system == custom
        assert rebuilt.resolve_system() == custom

    def test_resolve_system_builds_preset(self):
        assert EngineSpec(system="tiny").resolve_system() == tiny_system()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown engine spec field"):
            EngineSpec.from_dict({"architcture": "exact"})

    def test_memory_budget_roundtrip_and_spellings(self):
        spec = EngineSpec(system="tiny", memory_budget_bytes="64K")
        assert spec.memory_budget_bytes == 65536   # normalised to int bytes
        assert EngineSpec(system="tiny", memory_budget_bytes=65536) == spec
        payload = json.loads(spec.to_json())
        assert payload["memory_budget_bytes"] == 65536
        assert EngineSpec.from_json(spec.to_json()) == spec
        # Default stays None and serialises as null.
        assert EngineSpec(system="tiny").memory_budget_bytes is None
        assert json.loads(EngineSpec(system="tiny").to_json())
        assert EngineSpec.from_json(
            EngineSpec(system="tiny").to_json()).memory_budget_bytes is None

    def test_memory_budget_too_small_rejected_actionably(self):
        # tiny: one scanline is 16 points x 64 elements x 25 B = 25600 B.
        with pytest.raises(ValueError, match="raise the budget to at least "
                                             "25600 bytes"):
            EngineSpec(system="tiny", memory_budget_bytes=100)
        with pytest.raises(ValueError, match="scanline"):
            EngineSpec(system="tiny").with_updates(memory_budget_bytes="1K")

    def test_memory_budget_garbage_rejected(self):
        with pytest.raises(ValueError, match="memory budget"):
            EngineSpec(system="tiny", memory_budget_bytes="lots")
        with pytest.raises(ValueError, match="positive"):
            EngineSpec(system="tiny", memory_budget_bytes=-1)


class TestScanSpec:
    def test_roundtrip(self):
        scan = ScanSpec(scenario="moving_point", frames=4, noise_std=0.1,
                        seed=3, options={"theta_fraction": 0.5})
        rebuilt = ScanSpec.from_json(scan.to_json())
        assert rebuilt == scan

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            ScanSpec.from_json('"abc"')

    def test_unknown_scenario_lists_registered(self):
        with pytest.raises(ValueError, match="moving_point"):
            ScanSpec(scenario="warp")

    def test_frame_count_validated(self):
        with pytest.raises(ValueError, match="frames"):
            ScanSpec(frames=0)

    def test_build_frames_moving_point(self, tiny):
        scan = ScanSpec(scenario="moving_point", frames=5, noise_std=0.2)
        frames = scan.build_frames(tiny)
        assert len(frames) == 5
        assert [f.frame_id for f in frames] == list(range(5))
        assert all(f.noise_std == 0.2 for f in frames)

    def test_build_frames_static_point_is_static(self, tiny):
        frames = ScanSpec(scenario="static_point", frames=3).build_frames(tiny)
        assert len({id(f.phantom) for f in frames}) == 1
        assert all(f.seed == 0 for f in frames)

    def test_build_frames_speckle_varies_seed(self, tiny):
        frames = ScanSpec(scenario="speckle", frames=3, noise_std=0.1,
                          options={"n_scatterers": 50}).build_frames(tiny)
        assert [f.seed for f in frames] == [0, 1, 2]


class TestOverrides:
    def test_parse_assignment_json_and_string(self):
        assert parse_assignment("backend=sharded") == ("backend", "sharded")
        assert parse_assignment("cache_capacity=8") == ("cache_capacity", 8)
        assert parse_assignment("a.b=0.5") == ("a.b", 0.5)
        assert parse_assignment("flag=true") == ("flag", True)
        with pytest.raises(ValueError):
            parse_assignment("no_equals_sign")

    def test_apply_overrides_nested_creates_mappings(self):
        data = EngineSpec().to_dict()
        assert data["architecture_options"] is None
        out = apply_overrides(data, ["architecture=tablefree",
                                     "architecture_options.delta=0.5"])
        assert out["architecture_options"] == {"delta": 0.5}
        assert data["architecture_options"] is None  # pure
        spec = EngineSpec.from_dict(out)
        assert spec.architecture_options.delta == 0.5

    def test_overridden_spec_still_validates(self):
        data = apply_overrides(EngineSpec().to_dict(), ["backend=warp"])
        with pytest.raises(ValueError, match="unknown backend"):
            EngineSpec.from_dict(data)

    def test_descending_into_scalar_rejected(self):
        # system.* on a preset *name* must not clobber the preset with {}.
        data = EngineSpec(system="tiny").to_dict()
        with pytest.raises(ValueError, match="'system' is 'tiny'"):
            apply_overrides(data, ["system.volume.n_depth=24"])

    def test_descending_into_inline_system_works(self):
        data = EngineSpec(system=tiny_system()).to_dict()
        out = apply_overrides(data, ["system.volume.n_depth=24"])
        spec = EngineSpec.from_dict(out)
        assert spec.resolve_system().volume.n_depth == 24
