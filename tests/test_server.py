"""Multi-stream beamforming server: multiplexing, backpressure, lifecycle.

Covers the ``repro.server`` subsystem end to end on the ``tiny`` preset:
spec round-trips, session multiplexing with bit-exact results, the three
backpressure policies (with drop accounting), zero-copy ring ingest, the
async ticket API, cross-session plan sharing, metrics export and clean
shutdown — plus the Session facade's engine-lifecycle guarantees this PR
introduced (``Session.close()`` and closeable services/backends).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import tiny_system
from repro.acoustics.phantom import point_target
from repro.api import EngineSpec, ScanSpec, Session
from repro.observability import render_prometheus
from repro.runtime.service import BeamformingService
from repro.server import (
    BackpressurePolicy,
    BeamformingServer,
    FrameDropped,
    RingExhausted,
    ServerClosed,
    ServerSpec,
    SharedFrameRing,
)
from repro.server.spec import resolve_policy


TINY = EngineSpec(system="tiny", backend="vectorized")


@pytest.fixture
def server():
    server = BeamformingServer(ServerSpec(engine=TINY, workers=2))
    yield server
    server.close()


def _phantom(system):
    return point_target(0.5 * (system.volume.depth_min
                               + system.volume.depth_max))


def _wait(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


def _stall_session(handle):
    """Make the session's engine block until the returned event is set."""
    gate = threading.Event()
    service = handle._state.service
    original = service.submit_frame

    def stalled(frame, noise_std=0.0, seed=0):
        gate.wait(timeout=60)
        return original(frame, noise_std=noise_std, seed=seed)

    service.submit_frame = stalled
    return gate


# ----------------------------------------------------------------- ServerSpec
class TestServerSpec:
    def test_json_round_trip(self):
        spec = ServerSpec(engine=TINY, workers=3, queue_capacity=5,
                          policy="drop_oldest", ring_slots=7, max_sessions=2)
        assert ServerSpec.from_json(spec.to_json()) == spec
        assert spec.policy is BackpressurePolicy.DROP_OLDEST

    def test_engine_dict_form_coerced(self):
        spec = ServerSpec(engine={"system": "tiny"})
        assert isinstance(spec.engine, EngineSpec)
        assert spec.engine.system == "tiny"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown server spec field"):
            ServerSpec.from_dict({"worker_count": 4})

    @pytest.mark.parametrize("field,value", [
        ("workers", 0), ("queue_capacity", 0), ("ring_slots", -1),
        ("max_sessions", 0)])
    def test_positive_int_validation(self, field, value):
        with pytest.raises(ValueError):
            ServerSpec(**{field: value})

    def test_unknown_policy_lists_names(self):
        with pytest.raises(ValueError, match="block, drop_oldest"):
            resolve_policy("newest_only")

    def test_ring_slots_default_covers_queue_plus_workers(self):
        spec = ServerSpec(workers=3, queue_capacity=5)
        assert spec.resolve_ring_slots() == 8
        assert spec.with_updates(ring_slots=2).resolve_ring_slots() == 2

    def test_session_memory_budget_roundtrip(self):
        spec = ServerSpec(engine=TINY, session_memory_budget_bytes="1M")
        assert spec.session_memory_budget_bytes == 1 << 20  # normalised
        assert ServerSpec.from_json(spec.to_json()) == spec
        assert ServerSpec(engine=TINY).session_memory_budget_bytes is None

    def test_session_memory_budget_too_small_rejected(self):
        # Validated eagerly against the default engine's system, with the
        # minimum viable budget in the message.
        with pytest.raises(ValueError, match="raise the budget"):
            ServerSpec(engine=TINY, session_memory_budget_bytes=10)

    def test_session_memory_budget_applied_to_default_sessions(self):
        spec = ServerSpec(engine=TINY, workers=1,
                          session_memory_budget_bytes="400K")
        with BeamformingServer(spec) as server:
            handle = server.open_session()
            state = server._sessions[handle.session_id]
            assert state.service.memory_budget_bytes == 400 * 1024
            # An engine carrying its own budget keeps it.
            own = server.open_session(
                spec=TINY.with_updates(memory_budget_bytes="800K"))
            own_state = server._sessions[own.session_id]
            assert own_state.service.memory_budget_bytes == 800 * 1024


# ----------------------------------------------------------- multiplexing
class TestMultiplexing:
    def test_sessions_match_single_stream_service(self, server):
        """Served volumes are bit-identical to a direct service run."""
        system = TINY.resolve_system()
        reference = BeamformingService(system, backend="vectorized")
        payload = reference._simulator.simulate(_phantom(system), seed=3)
        expected = reference.submit_frame(payload).rf
        reference.close()

        handles = [server.open_session() for _ in range(3)]
        tickets = [handle.submit(payload) for handle in handles]
        for ticket in tickets:
            np.testing.assert_array_equal(ticket.result(timeout=60).rf,
                                          expected)

    def test_plan_cache_shared_across_sessions(self, server):
        system = TINY.resolve_system()
        handles = [server.open_session() for _ in range(4)]
        payload = server._simulators[system.cache_key()] \
            .simulate(_phantom(system), seed=1)
        for handle in handles:
            handle.submit(payload).result(timeout=60)
        stats = server.cache.stats
        assert stats.misses == 1
        assert stats.hits == len(handles) - 1

    def test_per_session_engine_override(self, server):
        session = server.open_session(
            spec=TINY.with_updates(architecture="tablesteer"))
        system = TINY.resolve_system()
        payload = server._simulators[system.cache_key()] \
            .simulate(_phantom(system), seed=2)
        result = session.submit(payload).result(timeout=60)
        assert result.rf.shape == (system.volume.n_theta,
                                   system.volume.n_phi,
                                   system.volume.n_depth)

    def test_phantom_payloads_simulate_server_side(self, server):
        session = server.open_session()
        system = TINY.resolve_system()
        result = session.submit(_phantom(system), seed=5).result(timeout=60)
        assert np.isfinite(result.rf).all()

    def test_await_ticket_in_event_loop(self, server):
        session = server.open_session()
        system = TINY.resolve_system()

        async def run():
            return await session.submit(_phantom(system))

        result = asyncio.run(run())
        assert result.voxel_count > 0

    def test_max_sessions_enforced(self):
        with BeamformingServer(ServerSpec(engine=TINY, workers=1,
                                          max_sessions=1)) as server:
            server.open_session()
            with pytest.raises(ServerClosed, match="max_sessions"):
                server.open_session()

    def test_duplicate_session_id_rejected(self, server):
        server.open_session(session_id="probe")
        with pytest.raises(ValueError, match="already open"):
            server.open_session(session_id="probe")

    def test_spec_coercion_forms(self):
        for spec in (None, TINY, TINY.to_dict(), ServerSpec(engine=TINY)):
            server = BeamformingServer(spec, metrics=None)
            assert isinstance(server.spec, ServerSpec)
            server.close()
        with pytest.raises(ValueError, match="ServerSpec"):
            BeamformingServer(42)


# ------------------------------------------------------------- backpressure
class TestBackpressure:
    def _flooded_server(self, policy):
        server = BeamformingServer(
            ServerSpec(engine=TINY, workers=1, queue_capacity=1,
                       policy=policy))
        session = server.open_session()
        gate = _stall_session(session)
        system = TINY.resolve_system()
        payload = server._simulators[system.cache_key()] \
            .simulate(_phantom(system), seed=9)
        # First frame occupies the only worker; the queue (capacity 1) is
        # then filled by the second, so the third submission hits the
        # policy deterministically.
        first = session.submit(payload)
        _wait(lambda: session._state.in_flight)
        queued = session.submit(payload)
        return server, session, gate, payload, first, queued

    def test_block_policy_times_out_then_completes(self):
        server, session, gate, payload, first, queued = \
            self._flooded_server("block")
        try:
            with pytest.raises(TimeoutError, match="still full"):
                session.submit(payload, timeout=0.05)
            gate.set()
            third = session.submit(payload, timeout=60)
            for ticket in (first, queued, third):
                assert ticket.result(timeout=60).voxel_count > 0
            assert server.stats().drops == 0
        finally:
            server.close()

    def test_drop_oldest_evicts_queued_frame(self):
        server, session, gate, payload, first, queued = \
            self._flooded_server("drop_oldest")
        try:
            newest = session.submit(payload)
            with pytest.raises(FrameDropped, match="drop_oldest"):
                queued.result(timeout=60)
            assert queued.dropped()
            gate.set()
            assert first.result(timeout=60).voxel_count > 0
            assert newest.result(timeout=60).voxel_count > 0
            assert server.stats().drops == 1
            assert session.stats().drops == 1
        finally:
            server.close()

    def test_drop_latest_refuses_new_frame(self):
        server, session, gate, payload, first, queued = \
            self._flooded_server("drop_latest")
        try:
            newest = session.submit(payload)
            assert newest.dropped()
            with pytest.raises(FrameDropped, match="drop_latest"):
                newest.result(timeout=60)
            gate.set()
            assert first.result(timeout=60).voxel_count > 0
            assert queued.result(timeout=60).voxel_count > 0
            assert server.stats().drops == 1
        finally:
            server.close()

    def test_per_session_policy_override(self, server):
        session = server.open_session(policy="drop_latest",
                                      queue_capacity=1)
        assert session._state.policy is BackpressurePolicy.DROP_LATEST


# ------------------------------------------------------------------- rings
class TestRingIngest:
    def test_submit_slot_matches_direct_submit(self, server):
        system = TINY.resolve_system()
        direct = server.open_session()
        ring_fed = server.open_session()
        payload = server._simulators[system.cache_key()] \
            .simulate(_phantom(system), seed=11)
        expected = direct.submit(payload).result(timeout=60).rf
        lease = ring_fed.acquire_slot()
        lease.array[:] = payload.samples
        result = ring_fed.submit_slot(lease).result(timeout=60)
        np.testing.assert_array_equal(result.rf, expected)

    def test_slot_returns_to_ring_after_frame(self, server):
        session = server.open_session()
        system = TINY.resolve_system()
        payload = server._simulators[system.cache_key()] \
            .simulate(_phantom(system), seed=12)
        lease = session.acquire_slot()
        ring = session._state.ring
        before = ring.free_slots
        lease.array[:] = payload.samples
        session.submit_slot(lease).result(timeout=60)
        _wait(lambda: ring.free_slots == before + 1)

    def test_foreign_lease_rejected(self, server):
        a = server.open_session()
        b = server.open_session()
        lease = a.acquire_slot()
        b.acquire_slot().release()  # force b's ring to exist
        with pytest.raises(ValueError, match="does not belong"):
            b.submit_slot(lease)
        lease.release()

    def test_ring_exhaustion_raises(self):
        ring = SharedFrameRing((2, 4), slots=1)
        try:
            lease = ring.acquire()
            with pytest.raises(RingExhausted):
                ring.acquire(timeout=0.01)
            lease.release()
            ring.acquire(timeout=0.01).release()
        finally:
            ring.close()

    def test_released_lease_array_refused(self):
        ring = SharedFrameRing((2, 4), slots=1)
        try:
            lease = ring.acquire()
            lease.release()
            with pytest.raises(RuntimeError, match="already released"):
                lease.array
        finally:
            ring.close()


# ----------------------------------------------------------------- metrics
class TestMetrics:
    def test_export_covers_server_and_sessions(self, server):
        session = server.open_session(session_id="probe-1")
        system = TINY.resolve_system()
        session.submit(_phantom(system)).result(timeout=60)
        exported = server.export_metrics()
        names = exported.names()
        for name in ("server_frames_total", "server_drops_total",
                     "server_sessions_active", "server_latency_seconds",
                     "server_session_probe_1_queue_depth",
                     "server_session_probe_1_frames_total",
                     "server_session_probe_1_drops_total",
                     "server_session_probe_1_latency_seconds",
                     "plan_cache_hits_total"):
            assert name in names
        text = render_prometheus(exported)
        assert 'server_session_probe_1_latency_seconds{quantile="0.5"}' in text
        assert 'server_session_probe_1_latency_seconds{quantile="0.99"}' in text

    def test_stats_percentiles_and_counts(self, server):
        session = server.open_session()
        system = TINY.resolve_system()
        for seed in range(3):
            session.submit(_phantom(system), seed=seed).result(timeout=60)
        stats = server.stats()
        assert stats.frames == 3
        assert stats.workers == 2
        assert stats.p99_latency_seconds >= stats.p50_latency_seconds > 0
        (session_stats,) = stats.sessions
        assert session_stats.frames == 3
        assert session_stats.queue_depth == 0


# --------------------------------------------------------------- lifecycle
class TestLifecycle:
    def test_close_drains_pending_frames(self):
        server = BeamformingServer(ServerSpec(engine=TINY, workers=1))
        session = server.open_session()
        system = TINY.resolve_system()
        tickets = [session.submit(_phantom(system), seed=i)
                   for i in range(4)]
        server.close()  # drain=True default
        assert all(t.result(timeout=1).voxel_count > 0 for t in tickets)

    def test_close_without_drain_cancels(self):
        server = BeamformingServer(
            ServerSpec(engine=TINY, workers=1, queue_capacity=8))
        session = server.open_session()
        gate = _stall_session(session)
        system = TINY.resolve_system()
        payload = server._simulators[system.cache_key()] \
            .simulate(_phantom(system), seed=4)
        first = session.submit(payload)
        _wait(lambda: session._state.in_flight)
        pending = [session.submit(payload) for _ in range(3)]
        gate.set()
        server.close(drain=False)
        assert first.result(timeout=60).voxel_count > 0
        for ticket in pending:
            with pytest.raises(ServerClosed):
                ticket.result(timeout=1)

    def test_submit_after_close_refused(self):
        server = BeamformingServer(ServerSpec(engine=TINY, workers=1))
        session = server.open_session()
        server.close()
        with pytest.raises(ServerClosed):
            session.submit(point_target(0.02))
        with pytest.raises(ServerClosed):
            server.open_session()

    def test_session_close_releases_only_that_session(self, server):
        a = server.open_session()
        b = server.open_session()
        system = TINY.resolve_system()
        a.close()
        with pytest.raises(ServerClosed):
            a.submit(_phantom(system))
        assert b.submit(_phantom(system)).result(timeout=60).voxel_count > 0
        assert server.session_ids == (b.session_id,)

    def test_close_is_idempotent(self, server):
        server.close()
        server.close()


# ----------------------------------------------------- Session facade wiring
class TestSessionFacade:
    def test_session_server_shares_cache_and_simulator(self):
        with Session(TINY) as session:
            server = session.server(workers=1)
            assert server.cache is session.cache
            key = session.system.cache_key()
            assert server._simulators[key] is session.simulator
            handle = server.open_session()
            payload = session.acquire(_phantom(session.system))
            expected = session.pipeline().image_volume(payload).rf
            np.testing.assert_array_equal(
                handle.submit(payload).result(timeout=60).rf, expected)
        # Session.close() closed the vended server.
        with pytest.raises(ServerClosed):
            server.open_session()

    def test_session_server_rejects_custom_engine(self):
        session = Session(TINY)
        with pytest.raises(ValueError, match="session's own spec"):
            session.server(spec=ServerSpec(
                engine=EngineSpec(system="paper")))

    def test_session_close_closes_vended_services(self):
        session = Session(TINY.with_updates(backend="sharded"))
        service = session.service()
        service.submit_frame(_phantom(session.system))
        pool = service._backend._pool
        assert pool is not None
        session.close()
        # The sharded pool was shut down by Session.close().
        assert service._backend._pool is None
        # Idempotent and re-usable: pools rebuild lazily.
        session.close()

    def test_stream_releases_its_service(self):
        session = Session(TINY)
        results = session.stream(ScanSpec(frames=2))
        assert len(results) == 2
        assert session._owned == []

    def test_service_context_manager_usable_after_close(self):
        system = tiny_system()
        with BeamformingService(system, backend="sharded") as service:
            first = service.submit_frame(_phantom(system))
        # close() ran; the service still works (pool rebuilds lazily).
        again = service.submit_frame(_phantom(system))
        np.testing.assert_array_equal(first.rf, again.rf)
