"""Tests for repro.registry: the generic plugin registry and options codec."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.fixedpoint.format import QFormat, signed
from repro.registry import (
    Registry,
    RegistryError,
    decode_options,
    encode_options,
)


@dataclass(frozen=True)
class _WidgetOptions:
    size: int = 3
    label: str = "w"


@dataclass(frozen=True)
class _NestedOptions:
    fmt: QFormat = field(default_factory=lambda: signed(3, 4))
    bits: int | None = None
    fractions: tuple[float, float] = (0.1, 0.9)


@pytest.fixture()
def registry():
    reg = Registry("widget")

    @reg.register("plain", description="no options")
    def _build_plain(context, options):
        return ("plain", context, options)

    @reg.register("sized", options=_WidgetOptions, description="has options")
    def _build_sized(context, options):
        return ("sized", context, options)

    return reg


class TestRegistry:
    def test_names_in_registration_order(self, registry):
        assert registry.names() == ("plain", "sized")
        assert "plain" in registry and "nope" not in registry
        assert len(registry) == 2

    def test_create_calls_factory_with_coerced_options(self, registry):
        kind, context, options = registry.create("sized", "ctx",
                                                 options={"size": 7})
        assert (kind, context) == ("sized", "ctx")
        assert options == _WidgetOptions(size=7)

    def test_create_defaults_options(self, registry):
        assert registry.create("sized", "ctx")[2] == _WidgetOptions()
        assert registry.create("plain", "ctx")[2] is None

    def test_unknown_name_lists_available(self, registry):
        with pytest.raises(RegistryError, match="plain, sized"):
            registry.get("nope")
        with pytest.raises(ValueError, match="unknown widget 'nope'"):
            registry.create("nope", "ctx")

    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(RegistryError, match="already registered"):
            @registry.register("plain")
            def _again(context, options):
                return None

    def test_unregister_frees_the_name(self, registry):
        registry.unregister("plain")
        assert "plain" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("plain")

    def test_options_for_optionless_entry_rejected(self, registry):
        with pytest.raises(RegistryError, match="takes no options"):
            registry.create("plain", "ctx", options={"size": 1})

    def test_options_must_be_dataclass_type(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError, match="dataclass"):
            reg.register("bad", options=dict)

    def test_decorator_returns_factory_unchanged(self):
        reg = Registry("thing")

        def factory(context, options):
            return 42

        assert reg.register("x")(factory) is factory

    def test_wrong_options_instance_rejected(self, registry):
        with pytest.raises(RegistryError, match="must be a _WidgetOptions"):
            registry.create("sized", "ctx", options=3)


class TestOptionsCodec:
    def test_roundtrip_flat(self):
        options = _WidgetOptions(size=9, label="q")
        data = encode_options(options)
        assert data == {"size": 9, "label": "q"}
        assert decode_options(_WidgetOptions, data) == options

    def test_roundtrip_nested_dataclass_and_union(self):
        options = _NestedOptions(fmt=signed(5, 2), bits=13,
                                 fractions=(0.2, 0.8))
        data = encode_options(options)
        assert data["fmt"] == {"integer_bits": 5, "fraction_bits": 2,
                               "signed": True}
        rebuilt = decode_options(_NestedOptions, data)
        assert rebuilt == options
        assert isinstance(rebuilt.fmt, QFormat)
        assert isinstance(rebuilt.fractions, tuple)

    def test_none_passthrough(self):
        assert encode_options(None) is None
        assert decode_options(_NestedOptions,
                              {"bits": None}).bits is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(RegistryError, match="unknown option"):
            decode_options(_WidgetOptions, {"sizw": 2})

    def test_non_dataclass_rejected(self):
        with pytest.raises(RegistryError):
            encode_options({"not": "a dataclass"})
        with pytest.raises(RegistryError):
            decode_options(int, {"a": 1})
