"""Tests for repro.core.tablefree: the on-the-fly delay generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import sample_volume_points
from repro.core.tablefree import TableFreeConfig, TableFreeDelayGenerator


class TestConstruction:
    def test_segment_count_reasonable(self, small_tablefree):
        assert 10 <= small_tablefree.segment_count <= 200

    def test_pwl_domain_covers_grid(self, small_tablefree):
        # The PWL must cover the squared receive distance of the farthest
        # grid point from the farthest element.
        generator = small_tablefree
        points = generator.grid.scanline_points(
            len(generator.grid.thetas) - 1, len(generator.grid.phis) - 1)
        _tx, rx_sq = generator._squared_args_samples(points)
        assert rx_sq.max() <= generator.pwl.x_max * (1 + 1e-9)

    def test_custom_delta(self, tiny):
        loose = TableFreeDelayGenerator.from_config(
            tiny, TableFreeConfig(delta=0.5))
        tight = TableFreeDelayGenerator.from_config(
            tiny, TableFreeConfig(delta=0.1))
        assert tight.segment_count > loose.segment_count


class TestDelayAccuracy:
    def test_selection_error_bounded(self, small, small_tablefree, small_exact):
        """Fixed-point TABLEFREE selection error stays within a couple samples
        (the paper reports max 2)."""
        points = sample_volume_points(small, max_points=300, seed=1)
        error = (small_tablefree.delay_indices(points)
                 - small_exact.delay_indices(points))
        assert np.max(np.abs(error)) <= 2

    def test_mean_error_sub_sample(self, small, small_tablefree, small_exact):
        """Mean absolute selection error is a fraction of a sample (~0.25)."""
        points = sample_volume_points(small, max_points=300, seed=2)
        error = (small_tablefree.delay_indices(points)
                 - small_exact.delay_indices(points))
        assert np.mean(np.abs(error)) < 0.45

    def test_continuous_error_bounded_by_two_delta(self, small, small_exact):
        """Without fixed point the delay error is bounded by 2 * delta
        (two square-root approximations are summed, Section VI-A)."""
        generator = TableFreeDelayGenerator.from_config(
            small, TableFreeConfig(delta=0.25, quantize_coefficients=False,
                                   delay_fraction_bits=-1))
        points = sample_volume_points(small, max_points=200, seed=3)
        error = (generator.delays_samples(points)
                 - small_exact.delays_samples(points))
        assert np.max(np.abs(error)) <= 0.5 + 1e-6

    def test_exact_transmit_mode_halves_error_bound(self, small, small_exact):
        generator = TableFreeDelayGenerator.from_config(
            small, TableFreeConfig(delta=0.25, approximate_transmit=False,
                                   quantize_coefficients=False,
                                   delay_fraction_bits=-1))
        points = sample_volume_points(small, max_points=200, seed=4)
        error = (generator.delays_samples(points)
                 - small_exact.delays_samples(points))
        assert np.max(np.abs(error)) <= 0.25 + 1e-6

    def test_smaller_delta_improves_accuracy(self, tiny, tiny_exact):
        points = sample_volume_points(tiny, max_points=150, seed=5)
        errors = {}
        for delta in (0.5, 0.125):
            generator = TableFreeDelayGenerator.from_config(
                tiny, TableFreeConfig(delta=delta, quantize_coefficients=False,
                                      delay_fraction_bits=-1))
            diff = (generator.delays_samples(points)
                    - tiny_exact.delays_samples(points))
            errors[delta] = np.mean(np.abs(diff))
        assert errors[0.125] < errors[0.5]


class TestInterfaces:
    def test_delays_samples_shape(self, tiny_tablefree, tiny):
        points = np.array([[0.0, 0.0, 0.01], [0.001, 0.0, 0.012]])
        delays = tiny_tablefree.delays_samples(points)
        assert delays.shape == (2, tiny.transducer.element_count)

    def test_delay_indices_integer(self, tiny_tablefree):
        points = np.array([[0.0, 0.0, 0.01]])
        indices = tiny_tablefree.delay_indices(points)
        assert indices.dtype == np.int64
        assert np.all(indices >= 0)

    def test_scanline_delays_shape(self, tiny_tablefree, tiny):
        delays = tiny_tablefree.scanline_delays_samples(1, 2)
        assert delays.shape == (tiny.volume.n_depth, tiny.transducer.element_count)

    def test_nappe_delays_shape(self, tiny_tablefree, tiny):
        delays = tiny_tablefree.nappe_delays_samples(4)
        assert delays.shape == (tiny.volume.n_theta, tiny.volume.n_phi,
                                tiny.transducer.element_count)

    def test_nappe_and_scanline_consistent(self, tiny_tablefree):
        nappe = tiny_tablefree.nappe_delays_samples(6)
        scanline = tiny_tablefree.scanline_delays_samples(3, 5)
        np.testing.assert_allclose(nappe[3, 5], scanline[6])

    def test_grid_point_delays_match_point_api(self, tiny_tablefree):
        point = tiny_tablefree.grid.point(2, 2, 7).reshape(1, 3)
        from_points = tiny_tablefree.delays_samples(point)[0]
        from_scanline = tiny_tablefree.scanline_delays_samples(2, 2)[7]
        np.testing.assert_allclose(from_points, from_scanline)


class TestSegmentTracking:
    def test_scanline_sweep_needs_few_segment_steps(self, small_tablefree):
        stats = small_tablefree.segment_step_statistics(i_theta=0, i_phi=0,
                                                        element_index=0)
        assert stats["evaluations"] == len(small_tablefree.grid.depths)
        assert stats["mean_steps"] < 2.0

    def test_incremental_evaluator_agrees_with_pwl(self, small_tablefree, rng):
        evaluator = small_tablefree.incremental_evaluator()
        xs = np.sort(rng.uniform(0, small_tablefree.pwl.x_max, 200))
        np.testing.assert_allclose(evaluator.evaluate_sequence(xs),
                                   small_tablefree.pwl.evaluate(xs))
