"""Tests for repro.sweep: content-addressed store, resumable executor,
SweepRunSpec, parallel dispatch, CLI subcommand and the sweep-path
PlanCache/leak fixes."""

from __future__ import annotations

import json
import os
import threading
import warnings

import numpy as np
import pytest

from repro.analysis.fixedpoint_impact import kernel_fixed_point_sweep
from repro.api import EngineSpec, Session, SweepSpec
from repro.cli import main
from repro.experiments.e10_imaging import scheme_quality_sweep
from repro.runtime.cache import PlanCache
from repro.sweep import (
    SweepExecutor,
    SweepRunSpec,
    SweepStore,
    cell_key,
    resolved_cell_spec,
    run_sweep,
)

TINY = EngineSpec(system="tiny", backend="vectorized")
GRID = SweepSpec(scenarios=("static_point",), schemes=("focused",),
                 architectures=("exact", "tablesteer"))


# ---------------------------------------------------------------- cell keys
def test_cell_key_is_stable_across_spec_instances():
    a = resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                           "static_point", "focused", "exact", "reference")
    b = resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                           "static_point", "focused", "exact", "reference")
    assert cell_key(a) == cell_key(b)


def test_cell_key_ignores_dict_construction_order():
    spec = resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                              "static_point", "focused", "exact", "reference")
    reordered = dict(reversed(list(spec.items())))
    assert cell_key(spec) == cell_key(reordered)


def test_cell_key_discriminates_every_identity_component():
    base = cell_key(resolved_cell_spec(
        EngineSpec(system="tiny"), SweepSpec(),
        "static_point", "focused", "exact", "reference"))
    variants = [
        resolved_cell_spec(EngineSpec(system="small"), SweepSpec(),
                           "static_point", "focused", "exact", "reference"),
        resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(seed=7),
                           "static_point", "focused", "exact", "reference"),
        resolved_cell_spec(EngineSpec(system="tiny"),
                           SweepSpec(noise_std=0.1),
                           "static_point", "focused", "exact", "reference"),
        resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                           "cyst", "focused", "exact", "reference"),
        resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                           "static_point", "planewave", "exact", "reference"),
        resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                           "static_point", "focused", "tablesteer",
                           "reference"),
        resolved_cell_spec(EngineSpec(system="tiny"), SweepSpec(),
                           "static_point", "focused", "exact", "vectorized"),
        resolved_cell_spec(EngineSpec(system="tiny", quantization=14),
                           SweepSpec(),
                           "static_point", "focused", "exact", "reference"),
        resolved_cell_spec(EngineSpec(system="tiny", precision="float32"),
                           SweepSpec(),
                           "static_point", "focused", "exact", "reference"),
    ]
    keys = {cell_key(v) for v in variants}
    assert base not in keys
    assert len(keys) == len(variants)


def test_cell_spec_inherits_options_only_for_matching_names():
    engine = EngineSpec(system="tiny", architecture="tablesteer",
                        architecture_options={"total_bits": 14})
    spec = resolved_cell_spec(engine, SweepSpec(), "static_point", "focused",
                              "tablesteer", "reference")
    assert spec["architecture_options"]["total_bits"] == 14
    # memory budget / trace / cache sizing are execution policy, not
    # identity: bit-identity of tiled execution is pinned elsewhere.
    budgeted = engine.with_updates(memory_budget_bytes="8M", trace=True,
                                   cache_capacity=9)
    other = resolved_cell_spec(budgeted, SweepSpec(), "static_point",
                               "focused", "tablesteer", "reference")
    assert cell_key(spec) == cell_key(other)


# -------------------------------------------------------------------- store
def test_store_roundtrip_is_bit_identical(tmp_path, rng):
    store = SweepStore(tmp_path)
    volume = rng.standard_normal((3, 4, 5))
    metrics = {"cnr": 1.25, "gcnr": float("nan")}
    store.write("ab12", volume, metrics, {"kind": "test"})
    assert "ab12" in store
    cell = store.read("ab12")
    np.testing.assert_array_equal(cell["volume"], volume)
    assert cell["volume"].dtype == volume.dtype
    np.testing.assert_equal(cell["metrics"], metrics)  # NaN-tolerant
    assert store.read_spec("ab12") == {"kind": "test"}
    assert list(store.keys()) == ["ab12"]
    assert len(store) == 1


def test_store_metrics_only_cell(tmp_path):
    store = SweepStore(tmp_path)
    store.write("cd34", None, {"affected_fraction": 0.02}, {})
    cell = store.read("cd34")
    assert "volume" not in cell
    assert cell["metrics"] == {"affected_fraction": 0.02}


def test_store_unscored_cell_omits_metrics(tmp_path, rng):
    store = SweepStore(tmp_path)
    store.write("ef56", rng.standard_normal(4), None, {})
    assert "metrics" not in store.read("ef56")


def test_store_incomplete_cell_reads_as_missing(tmp_path, rng):
    """A volume without its cell.json marker is an interrupted write."""
    store = SweepStore(tmp_path)
    cell_dir = store.path_for("ab99")
    cell_dir.mkdir(parents=True)
    with open(cell_dir / "volume.npz", "wb") as fh:
        np.savez(fh, rf=rng.standard_normal(4))
    assert "ab99" not in store
    assert list(store.keys()) == []


def test_store_rejects_malformed_keys(tmp_path):
    store = SweepStore(tmp_path)
    for bad in ("", "../escape", ".hidden", "a/b"):
        with pytest.raises(ValueError):
            store.path_for(bad)


# ----------------------------------------------------------- SweepRunSpec
def test_run_spec_roundtrips_through_json():
    spec = SweepRunSpec(engine={"system": "tiny", "backend": "vectorized"},
                        sweep={"scenarios": ["cyst"],
                               "architectures": ["exact", "tablefree"]},
                        store="/tmp/sweeps", workers=4, resume=False,
                        overwrite=True)
    rebuilt = SweepRunSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.engine.backend == "vectorized"
    assert rebuilt.sweep.architectures == ("exact", "tablefree")


def test_run_spec_rejects_unknown_fields_and_bad_values():
    with pytest.raises(ValueError, match="unknown sweep run spec field"):
        SweepRunSpec.from_dict({"stor": "/tmp/x"})
    with pytest.raises(ValueError, match="workers must be"):
        SweepRunSpec(workers=0, store="/tmp/x")
    with pytest.raises(ValueError, match="workers must be"):
        SweepRunSpec(workers=True, store="/tmp/x")
    with pytest.raises(ValueError, match="requires a store"):
        SweepRunSpec(workers=2)
    with pytest.raises(ValueError, match="engine must be"):
        SweepRunSpec(engine="tiny")
    with pytest.raises(ValueError, match="resume must be"):
        SweepRunSpec(resume=1)


def test_executor_rejects_parallel_dispatch_without_store():
    with Session(TINY) as session:
        with pytest.raises(ValueError, match="requires a store"):
            SweepExecutor(session, workers=2)


# ------------------------------------------------------- executor + resume
def test_executor_matches_in_process_sweep_and_caches(tmp_path):
    with Session(TINY) as session:
        baseline = session.sweep(spec=GRID)
    store = tmp_path / "store"
    with Session(TINY) as session:
        first = SweepExecutor(session, store=store)
        r1 = first.run(GRID)
        assert first.completed == len(baseline) and first.cached == 0
    with Session(TINY) as session:
        second = SweepExecutor(session, store=store)
        r2 = second.run(GRID)
        assert second.completed == 0 and second.cached == len(baseline)
        assert all(status == "cached" for status in second.statuses.values())
    assert list(r1) == list(baseline) and list(r2) == list(baseline)
    for key in baseline:
        np.testing.assert_array_equal(baseline[key]["volume"],
                                      r1[key]["volume"])
        np.testing.assert_array_equal(baseline[key]["volume"],
                                      r2[key]["volume"])
        np.testing.assert_equal(baseline[key]["metrics"],
                                r2[key]["metrics"])


def test_executor_overwrite_recomputes_completed_cells(tmp_path):
    store = tmp_path / "store"
    with Session(TINY) as session:
        SweepExecutor(session, store=store).run(GRID)
    with Session(TINY) as session:
        executor = SweepExecutor(session, store=store, overwrite=True)
        executor.run(GRID)
        assert executor.completed == 2 and executor.cached == 0


def test_executor_without_resume_recomputes(tmp_path):
    store = tmp_path / "store"
    with Session(TINY) as session:
        SweepExecutor(session, store=store).run(GRID)
    with Session(TINY) as session:
        executor = SweepExecutor(session, store=store, resume=False)
        executor.run(GRID)
        assert executor.completed == 2 and executor.cached == 0


class _Interrupted(BaseException):
    """Stand-in for the KeyboardInterrupt that kills a real sweep."""


def test_interrupted_sweep_resumes_with_only_remaining_cells(
        tmp_path, monkeypatch):
    """Kill after 2 of 4 cells; the rerun computes exactly the other 2 and
    the merged results are bit-identical to an uninterrupted sweep."""
    import repro.sweep.executor as executor_mod

    grid = SweepSpec(scenarios=("static_point",), schemes=("focused",),
                     architectures=("exact", "tablefree", "tablesteer"),
                     backends=("reference", "vectorized"))
    with Session(TINY) as session:
        uninterrupted = session.sweep(spec=grid)

    real_execute = executor_mod.execute_cell
    survived = 2
    calls = {"n": 0}

    def dying_execute(*args, **kwargs):
        if calls["n"] >= survived:
            raise _Interrupted()
        calls["n"] += 1
        return real_execute(*args, **kwargs)

    monkeypatch.setattr(executor_mod, "execute_cell", dying_execute)
    store_dir = tmp_path / "store"
    with Session(TINY) as session:
        executor = SweepExecutor(session, store=store_dir)
        with pytest.raises(_Interrupted):
            executor.run(grid)
        assert executor.completed == survived
        assert executor.failed == 1
    store = SweepStore(store_dir)
    done = list(store.keys())
    assert len(done) == survived
    mtimes = {key: os.stat(store.path_for(key) / "cell.json").st_mtime_ns
              for key in done}

    monkeypatch.setattr(executor_mod, "execute_cell", real_execute)
    with Session(TINY) as session:
        executor = SweepExecutor(session, store=store_dir)
        resumed = executor.run(grid)
        assert executor.completed == len(uninterrupted) - survived
        assert executor.cached == survived
    for key in done:  # surviving artifacts were served, not rewritten
        assert os.stat(store.path_for(key)
                       / "cell.json").st_mtime_ns == mtimes[key]
    assert list(resumed) == list(uninterrupted)
    for key in uninterrupted:
        np.testing.assert_array_equal(uninterrupted[key]["volume"],
                                      resumed[key]["volume"])
        np.testing.assert_equal(uninterrupted[key]["metrics"],
                                resumed[key]["metrics"])


def test_run_sweep_convenience_from_json(tmp_path):
    spec = SweepRunSpec(engine=TINY, sweep=GRID,
                        store=str(tmp_path / "store"))
    results = run_sweep(spec.to_json())
    assert len(results) == 2
    again = run_sweep({"engine": TINY.to_dict(), "sweep": GRID.to_dict(),
                       "store": str(tmp_path / "store")})
    for key in results:
        np.testing.assert_array_equal(results[key]["volume"],
                                      again[key]["volume"])


@pytest.mark.conformance
def test_parallel_dispatch_bit_identical_to_serial(tmp_path):
    grid = SweepSpec(scenarios=("static_point",),
                     schemes=("focused", "planewave"),
                     architectures=("exact", "tablesteer"))
    with Session(TINY) as session:
        in_process = session.sweep(spec=grid)
    with Session(TINY) as session:
        serial = SweepExecutor(session,
                               store=tmp_path / "serial").run(grid)
    with Session(TINY) as session:
        executor = SweepExecutor(session, store=tmp_path / "parallel",
                                 workers=2)
        parallel = executor.run(grid)
        assert executor.completed == len(in_process)
        assert executor.cached == 0
    assert list(parallel) == list(serial) == list(in_process)
    for key in in_process:
        np.testing.assert_array_equal(in_process[key]["volume"],
                                      serial[key]["volume"])
        np.testing.assert_array_equal(in_process[key]["volume"],
                                      parallel[key]["volume"])
        np.testing.assert_equal(in_process[key]["metrics"],
                                parallel[key]["metrics"])


# ------------------------------------------------------- session leak fixes
def test_grid_sweep_retains_no_per_cell_engines():
    """A 24-cell grid must leave Session._owned empty (the historical leak
    kept one pipeline — and its backend pools — alive per cell)."""
    grid = SweepSpec(scenarios=("static_point", "cyst"),
                     schemes=("focused", "planewave"),
                     architectures=("exact", "tablefree", "tablesteer"),
                     backends=("reference", "vectorized"))
    with Session(TINY) as session:
        results = session.sweep(spec=grid)
        assert len(results) == 24
        assert session._owned == []


def test_legacy_sweeps_retain_no_per_cell_engines(tiny):
    from repro.api import ScanSpec

    with Session(TINY) as session:
        scan = ScanSpec(scenario="static_point", frames=1)
        phantom = scan.build_frames(session.system)[0].phantom
        images = session.sweep(phantom,
                               architectures=("exact", "tablesteer"))
        assert set(images) == {"exact", "tablesteer"}
        assert session._owned == []
        volumes = session.sweep(phantom,
                                architectures=("exact", "tablesteer"),
                                backends=("reference", "vectorized"))
        assert len(volumes) == 4
        assert session._owned == []


# --------------------------------------------------------- PlanCache fixes
class _Sized:
    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


def test_cache_stats_snapshot_is_taken_under_the_lock():
    cache = PlanCache(capacity=2)
    acquired = threading.Event()
    release = threading.Event()

    def holder():
        with cache._lock:
            acquired.set()
            release.wait(5.0)

    snapshots: list = []
    holder_thread = threading.Thread(target=holder)
    holder_thread.start()
    assert acquired.wait(5.0)
    reader = threading.Thread(target=lambda: snapshots.append(cache.stats))
    reader.start()
    reader.join(0.2)
    try:
        assert not snapshots  # the snapshot must block on the held lock
    finally:
        release.set()
        holder_thread.join(5.0)
        reader.join(5.0)
    assert len(snapshots) == 1


def test_cache_stats_never_torn_under_concurrent_mutation():
    """size/bytes must always describe one consistent state: entries of 10
    tracked bytes under a 30-byte budget mean bytes == 10 * size, always."""
    cache = PlanCache(capacity=4, max_bytes=30)
    stop = threading.Event()

    def mutate():
        i = 0
        while not stop.is_set():
            cache.get_or_build(i % 7, lambda: _Sized(10))
            i += 1

    thread = threading.Thread(target=mutate)
    thread.start()
    try:
        for _ in range(2000):
            stats = cache.stats
            assert stats.bytes == 10 * stats.size
            assert stats.size <= 3
    finally:
        stop.set()
        thread.join(5.0)


def test_reserve_warns_when_budget_replaces_count_bound():
    cache = PlanCache(capacity=2, max_bytes=1000)
    with pytest.warns(RuntimeWarning, match="cannot be honoured"):
        cache.reserve(8)
    assert cache.capacity == 8  # still grows: budget removal restores it


def test_reserve_with_fitting_byte_hint_is_silent():
    cache = PlanCache(capacity=2, max_bytes=1000)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        cache.reserve(8, nbytes=900)
    assert cache.capacity == 8


def test_reserve_warns_when_byte_hint_exceeds_budget():
    cache = PlanCache(capacity=8, max_bytes=1000)
    with pytest.warns(RuntimeWarning, match="exceeds the 1000-byte budget"):
        cache.reserve(2, nbytes=4000)
    assert cache.max_bytes == 1000  # the user's cap is never loosened


def test_reserve_stays_silent_without_budget_or_growth():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        unbounded = PlanCache(capacity=2)
        unbounded.reserve(16)
        assert unbounded.capacity == 16
        budgeted = PlanCache(capacity=4, max_bytes=100)
        budgeted.reserve(2)  # no growth requested: nothing to warn about


def test_sweep_cache_hits_pinned_under_memory_budget():
    """With a budget large enough for the grid's working set, the second
    identical sweep must be all hits — and the reserve byte hint must keep
    the budget warning quiet (the reservation genuinely fits)."""
    spec = TINY.with_updates(memory_budget_bytes=8_000_000)
    with Session(spec) as session:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session.sweep(spec=GRID)
            first = session.cache.stats
            session.sweep(spec=GRID)
            second = session.cache.stats
    assert not [w for w in caught if issubclass(w.category, RuntimeWarning)
                and "plan-cache" in str(w.message)]
    # One plan per architecture (focused = 1 firing, backend-independent).
    assert first.misses == 2
    assert second.misses == first.misses  # second sweep compiled nothing
    assert second.hits > first.hits
    assert second.evictions == 0


# ----------------------------------------------------------------- metrics
def test_sweep_counters_export_through_the_registry(tmp_path):
    store = tmp_path / "store"
    with Session(TINY) as session:
        executor = SweepExecutor(session, store=store)
        executor.run(GRID)
        executor.run(GRID)
        snapshot = session.metrics.snapshot()
    assert snapshot["sweep_cells_completed_total"] == 2
    assert snapshot["sweep_cells_cached_total"] == 2
    assert snapshot["sweep_cells_failed_total"] == 0


def test_sweep_emits_cell_spans():
    spec = TINY.with_updates(trace=True)
    with Session(spec) as session:
        session.sweep(spec=GRID)
    assert len(session.tracer.find("sweep")) == 1
    cells = session.tracer.find("cell")
    assert len(cells) == 2
    assert all(span.attributes["cached"] is False for span in cells)


# --------------------------------------------------------------------- CLI
def _grid_args(store):
    return ["sweep", "--system", "tiny", "--store", str(store),
            "--set", 'sweep.architectures=["exact","tablesteer"]']


def test_cli_sweep_runs_then_serves_from_cache(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(_grid_args(store)) == 0
    out = capsys.readouterr().out
    assert "2 computed, 0 cached" in out
    assert main(_grid_args(store)) == 0
    out = capsys.readouterr().out
    assert "0 computed, 2 cached" in out
    assert "[cached" in out


def test_cli_sweep_check_prints_resolved_spec(tmp_path, capsys):
    assert main(["sweep", "--system", "tiny", "--check",
                 "--store", str(tmp_path), "--workers", "3",
                 "--no-resume", "--overwrite"]) == 0
    spec = SweepRunSpec.from_json(capsys.readouterr().out)
    assert spec.engine.system == "tiny"
    assert spec.engine.backend == "vectorized"
    assert (spec.workers, spec.resume, spec.overwrite) == (3, False, True)


def test_cli_sweep_spec_file_roundtrip(tmp_path, capsys):
    spec_file = tmp_path / "run.json"
    spec_file.write_text(SweepRunSpec(
        engine=TINY, sweep=GRID, store=str(tmp_path / "store")).to_json())
    assert main(["sweep", "--spec", str(spec_file)]) == 0
    assert "2 computed" in capsys.readouterr().out


def test_cli_sweep_rejects_bad_input(tmp_path, capsys):
    assert main(["sweep", "--set",
                 'sweep.scenarios=["nope"]']) == 2
    assert "nope" in capsys.readouterr().err
    assert main(["sweep", "--workers", "2"]) == 2
    assert "requires a store" in capsys.readouterr().err


def test_cli_sweep_writes_metrics_snapshot(tmp_path, capsys):
    metrics_file = tmp_path / "metrics.prom"
    assert main(_grid_args(tmp_path / "store")
                + ["--metrics-out", str(metrics_file)]) == 0
    text = metrics_file.read_text()
    assert "sweep_cells_completed_total 2" in text
    assert "sweep_cells_cached_total 0" in text


# ------------------------------------------------------ experiment reuse
def test_scheme_quality_sweep_store_reuse_matches_fresh(tmp_path):
    kwargs = dict(scenarios=("static_point",), schemes=("focused",),
                  architectures=("exact",), bit_widths=(None, 14))
    fresh = scheme_quality_sweep(**kwargs)
    first = scheme_quality_sweep(store=str(tmp_path), **kwargs)
    second = scheme_quality_sweep(store=str(tmp_path), **kwargs)
    assert list(first) == list(fresh) and list(second) == list(fresh)
    for key in fresh:
        np.testing.assert_equal(first[key], fresh[key])
        np.testing.assert_equal(second[key], fresh[key])
    # The two widths must not collide in the store: 2 distinct artifacts.
    assert len(SweepStore(tmp_path)) == 2


def test_kernel_fixed_point_sweep_store_reuse(tmp_path):
    fresh = kernel_fixed_point_sweep(bit_widths=(13, 18))
    first = kernel_fixed_point_sweep(bit_widths=(13, 18),
                                     store=str(tmp_path))
    second = kernel_fixed_point_sweep(bit_widths=(13, 18),
                                      store=str(tmp_path))
    assert first == fresh
    assert second == fresh  # served from the store, value-identical
    assert len(SweepStore(tmp_path)) == 2


def test_kernel_sweep_store_artifacts_are_self_describing(tmp_path):
    kernel_fixed_point_sweep(bit_widths=(13,), store=str(tmp_path))
    store = SweepStore(tmp_path)
    (key,) = store.keys()
    spec = store.read_spec(key)
    assert spec["kind"] == "e6_kernel_fixed_point"
    assert spec["total_bits"] == 13
    assert json.loads(json.dumps(spec)) == spec
