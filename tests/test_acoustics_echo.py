"""Tests for repro.acoustics.echo: synthetic channel-data generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.echo import ChannelData, EchoSimulator
from repro.acoustics.phantom import Phantom, point_target
from repro.core.exact import ExactDelayEngine


class TestChannelData:
    def test_shape_properties(self):
        data = ChannelData(samples=np.zeros((4, 100)), sampling_frequency=32e6)
        assert data.element_count == 4
        assert data.sample_count == 100

    def test_sample_at_basic_lookup(self):
        samples = np.arange(12, dtype=float).reshape(3, 4)
        data = ChannelData(samples=samples, sampling_frequency=32e6)
        values = data.sample_at(np.array([0, 1, 2]), np.array([1, 2, 3]))
        np.testing.assert_allclose(values, [1.0, 6.0, 11.0])

    def test_sample_at_out_of_range_returns_zero(self):
        data = ChannelData(samples=np.ones((2, 10)), sampling_frequency=32e6)
        values = data.sample_at(np.array([0, 0, 1]), np.array([-1, 10, 5]))
        np.testing.assert_allclose(values, [0.0, 0.0, 1.0])

    def test_sample_at_preserves_shape(self):
        data = ChannelData(samples=np.ones((4, 10)), sampling_frequency=32e6)
        elements = np.zeros((3, 4), dtype=int)
        delays = np.full((3, 4), 5)
        assert data.sample_at(elements, delays).shape == (3, 4)


class TestEchoSimulator:
    def test_trace_dimensions(self, tiny, tiny_channel_data):
        assert tiny_channel_data.element_count == tiny.transducer.element_count
        assert tiny_channel_data.sample_count == tiny.echo_buffer_samples

    def test_empty_phantom_gives_silence(self, tiny):
        simulator = EchoSimulator.from_config(tiny)
        phantom = Phantom(positions=np.zeros((0, 3)), amplitudes=np.zeros(0))
        data = simulator.simulate(phantom)
        assert np.all(data.samples == 0)

    def test_echo_arrives_at_exact_delay(self, tiny):
        """The peak of each element's trace sits at the exact two-way delay."""
        grid_depth = 0.01
        simulator = EchoSimulator.from_config(tiny)
        data = simulator.simulate(point_target(depth=grid_depth))
        exact = ExactDelayEngine.from_config(tiny)
        expected_indices = exact.delay_indices(np.array([[0.0, 0.0, grid_depth]]))[0]
        for element in range(0, tiny.transducer.element_count, 13):
            trace = np.abs(data.samples[element])
            if trace.max() == 0:
                continue
            peak = int(np.argmax(trace))
            assert abs(peak - expected_indices[element]) <= 2

    def test_amplitude_scales_linearly(self, tiny):
        simulator = EchoSimulator.from_config(tiny)
        weak = simulator.simulate(point_target(depth=0.01, amplitude=1.0))
        strong = simulator.simulate(point_target(depth=0.01, amplitude=2.0))
        np.testing.assert_allclose(strong.samples, 2.0 * weak.samples, atol=1e-12)

    def test_superposition_of_scatterers(self, tiny):
        simulator = EchoSimulator.from_config(tiny)
        a = point_target(depth=0.008)
        b = point_target(depth=0.012)
        combined = simulator.simulate(a.merged_with(b))
        separate = simulator.simulate(a).samples + simulator.simulate(b).samples
        np.testing.assert_allclose(combined.samples, separate, atol=1e-12)

    def test_noise_is_reproducible_and_additive(self, tiny):
        simulator = EchoSimulator.from_config(tiny)
        phantom = point_target(depth=0.01)
        clean = simulator.simulate(phantom, noise_std=0.0)
        noisy_a = simulator.simulate(phantom, noise_std=0.1, seed=42)
        noisy_b = simulator.simulate(phantom, noise_std=0.1, seed=42)
        np.testing.assert_allclose(noisy_a.samples, noisy_b.samples)
        assert not np.allclose(noisy_a.samples, clean.samples)
        residual = noisy_a.samples - clean.samples
        assert abs(np.std(residual) - 0.1) < 0.01

    def test_far_target_arrives_later(self, tiny):
        simulator = EchoSimulator.from_config(tiny)
        near = simulator.simulate(point_target(depth=0.005))
        far = simulator.simulate(point_target(depth=0.012))
        element = tiny.transducer.element_count // 2
        near_peak = int(np.argmax(np.abs(near.samples[element])))
        far_peak = int(np.argmax(np.abs(far.samples[element])))
        assert far_peak > near_peak

    def test_out_of_range_scatterer_contributes_nothing(self, tiny):
        simulator = EchoSimulator.from_config(tiny)
        # A scatterer much deeper than the echo buffer records.
        deep = point_target(depth=10.0)
        data = simulator.simulate(deep)
        assert np.all(data.samples == 0)
