"""Property-based tests (hypothesis) for memory-budgeted tiling.

These pin the invariants the tiled execution engine leans on:

* :meth:`TilePlanner.tiles` is an *exact partition* of the flat focal-point
  axis for any grid shape, budget and granularity — no overlap, no gap,
  full coverage, in order — and no tile's segment cost exceeds the budget;
* :meth:`TilePlanner.covering` returns exactly the tiles a row range
  intersects (the contract the sharded backend composes shard boundaries
  with tile boundaries through);
* :func:`parse_memory_budget` honours the binary suffix table and rejects
  garbage loudly;
* degenerate budgets change nothing but the tiling: single-voxel tiles
  (``granularity=1``) and a budget big enough for the whole grid both
  reproduce the untiled plan bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architectures import ARCHITECTURES
from repro.beamformer.das import DelayAndSumBeamformer
from repro.kernels import (
    TiledPlan,
    TilePlanner,
    compile_plan,
    parse_memory_budget,
    plan_storage_bytes,
)

grid_shapes = st.tuples(st.integers(1, 6), st.integers(1, 6),
                        st.integers(1, 12))
element_counts = st.integers(min_value=1, max_value=32)
interpolations = st.sampled_from(["nearest", "linear"])


@st.composite
def planners(draw):
    """A valid planner: the budget always holds at least one unit."""
    shape = draw(grid_shapes)
    n_elements = draw(element_counts)
    interpolation = draw(interpolations)
    granularity = draw(st.one_of(st.none(), st.integers(1, 16)))
    per_point = plan_storage_bytes(1, n_elements, None, interpolation)
    unit = granularity if granularity is not None else shape[2]
    # From exactly one unit up to several times the whole grid, plus a
    # ragged offset so budgets rarely divide evenly.
    n_points = shape[0] * shape[1] * shape[2]
    floor = per_point * unit  # one unit must fit, whatever the grid size
    budget = draw(st.integers(floor, max(floor, 4 * per_point * n_points))) \
        + draw(st.integers(0, per_point - 1))
    return TilePlanner(shape, n_elements, budget,
                       interpolation=interpolation, granularity=granularity)


@given(planner=planners())
@settings(max_examples=200, deadline=None)
def test_tiles_exactly_partition_the_grid(planner):
    """No overlap, no gap, full coverage, in order — for any budget."""
    tiles = planner.tiles()
    assert len(tiles) == planner.n_tiles >= 1
    assert tiles[0].start == 0
    assert tiles[-1].stop == planner.n_points
    for i, tile in enumerate(tiles):
        assert tile.index == i
        assert tile.n_points > 0
    for previous, current in zip(tiles, tiles[1:]):
        assert current.start == previous.stop  # adjacent: no overlap, no gap


@given(planner=planners())
@settings(max_examples=200, deadline=None)
def test_every_tile_fits_the_budget(planner):
    """A segment plan can never be sized over the budget, and the planner's
    predicted cost matches the storage model exactly."""
    for tile in planner.tiles():
        cost = planner.tile_nbytes(tile)
        assert cost <= planner.memory_budget_bytes
        assert cost == plan_storage_bytes(tile.n_points, planner.n_elements,
                                          planner.precision,
                                          planner.interpolation)
    assert planner.tile_bytes <= planner.memory_budget_bytes


@given(planner=planners(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_covering_returns_exactly_the_intersecting_tiles(planner, data):
    """``covering(rows)`` is the set a brute-force intersection finds."""
    start = data.draw(st.integers(0, planner.n_points))
    stop = data.draw(st.integers(start, planner.n_points))
    covered = list(planner.covering(slice(start, stop)))
    expected = [] if stop <= start else \
        [tile for tile in planner.tiles()
         if tile.start < stop and tile.stop > start]
    assert [t.index for t in covered] == [t.index for t in expected]


@given(n=st.integers(1, 10**6),
       suffix=st.sampled_from(["K", "M", "G", "T"]),
       trailing_b=st.booleans())
@settings(max_examples=100, deadline=None)
def test_parse_memory_budget_suffix_scaling(n, suffix, trailing_b):
    scale = {"K": 2**10, "M": 2**20, "G": 2**30, "T": 2**40}[suffix]
    text = f"{n}{suffix}" + ("B" if trailing_b else "")
    assert parse_memory_budget(text) == n * scale
    assert parse_memory_budget(text.lower()) == n * scale
    assert parse_memory_budget(n) == n


@pytest.mark.parametrize("bad", [0, -1, "0", "-2G", "eight gigs", "G",
                                 None, 1.5, True])
def test_parse_memory_budget_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_memory_budget(bad)


# ------------------------------------------------- degenerate-budget pins
@pytest.fixture(scope="module")
def tiled_substrate(tiny):
    """A beamformer, its untiled oracle volume, and one simulated frame."""
    from repro.acoustics.echo import EchoSimulator
    from repro.acoustics.phantom import point_target

    beamformer = DelayAndSumBeamformer(
        tiny, ARCHITECTURES.create("exact", tiny))
    frame = EchoSimulator.from_config(tiny).simulate(
        point_target(depth=0.04), seed=11)
    oracle = compile_plan(beamformer).execute(frame)
    return beamformer, frame, oracle


@pytest.mark.parametrize("granularity", [1, 3, None])
def test_degenerate_granularities_bit_identical(tiled_substrate, granularity):
    """Single-voxel tiles, ragged 3-point tiles and whole scanlines all
    reproduce the untiled plan bit for bit."""
    beamformer, frame, oracle = tiled_substrate
    per_point = plan_storage_bytes(
        1, beamformer.transducer.element_count, None,
        beamformer.interpolation)
    unit = granularity if granularity is not None else 16
    planner = TilePlanner.for_beamformer(
        beamformer, per_point * unit * 5, granularity=granularity)
    assert planner.n_tiles > 1
    volume = TiledPlan(beamformer, planner).execute(frame)
    np.testing.assert_array_equal(volume, oracle)


def test_oversized_budget_is_one_tile_and_bit_identical(tiled_substrate):
    """A budget larger than the whole grid degenerates to one tile whose
    output is the untiled volume, bit for bit."""
    beamformer, frame, oracle = tiled_substrate
    planner = TilePlanner.for_beamformer(beamformer, "1G")
    assert planner.n_tiles == 1
    assert planner.tile_points == planner.n_points
    volume = TiledPlan(beamformer, planner).execute(frame)
    np.testing.assert_array_equal(volume, oracle)


@given(budget_units=st.integers(1, 64))
@settings(max_examples=20, deadline=None)
def test_any_scanline_budget_bit_identical(tiled_substrate, budget_units):
    """Whatever the budget (one scanline up to the whole grid), the tiled
    volume equals the untiled volume bit for bit, and execute_rows agrees
    with the matching row slice for an arbitrary block."""
    beamformer, frame, oracle = tiled_substrate
    per_scanline = plan_storage_bytes(
        16, beamformer.transducer.element_count, None,
        beamformer.interpolation)
    planner = TilePlanner.for_beamformer(beamformer,
                                         per_scanline * budget_units)
    plan = TiledPlan(beamformer, planner)
    np.testing.assert_array_equal(plan.execute(frame), oracle)
    rows = slice(100, 900)
    np.testing.assert_array_equal(plan.execute_rows(frame, rows),
                                  oracle.reshape(-1)[rows])
