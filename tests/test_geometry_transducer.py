"""Tests for repro.geometry.transducer: element grid construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TransducerConfig, paper_system
from repro.geometry.transducer import MatrixTransducer, _centered_grid


class TestCenteredGrid:
    def test_single_element_at_origin(self):
        np.testing.assert_allclose(_centered_grid(1, 0.2e-3), [0.0])

    def test_even_count_straddles_zero(self):
        grid = _centered_grid(4, 1.0)
        np.testing.assert_allclose(grid, [-1.5, -0.5, 0.5, 1.5])

    def test_odd_count_has_zero(self):
        grid = _centered_grid(5, 1.0)
        assert 0.0 in grid

    def test_pitch_spacing(self):
        grid = _centered_grid(10, 0.1925e-3)
        np.testing.assert_allclose(np.diff(grid), 0.1925e-3)

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            _centered_grid(0, 1.0)


class TestMatrixTransducer:
    def test_element_count(self, tiny_transducer):
        assert tiny_transducer.element_count == 64
        assert tiny_transducer.positions.shape == (64, 3)

    def test_paper_transducer_shape(self):
        transducer = MatrixTransducer.from_config(paper_system())
        assert transducer.shape == (100, 100)
        assert transducer.element_count == 10_000

    def test_elements_lie_in_z_zero_plane(self, small_transducer):
        np.testing.assert_allclose(small_transducer.positions[:, 2], 0.0)

    def test_aperture_centred_on_origin(self, small_transducer):
        np.testing.assert_allclose(small_transducer.center(), [0, 0, 0],
                                   atol=1e-15)

    def test_element_index_row_major(self, tiny_transducer):
        ex, ey = tiny_transducer.shape
        assert tiny_transducer.element_index(0, 0) == 0
        assert tiny_transducer.element_index(0, 1) == 1
        assert tiny_transducer.element_index(1, 0) == ey

    def test_element_index_out_of_range(self, tiny_transducer):
        ex, ey = tiny_transducer.shape
        with pytest.raises(IndexError):
            tiny_transducer.element_index(ex, 0)
        with pytest.raises(IndexError):
            tiny_transducer.element_index(0, ey)
        with pytest.raises(IndexError):
            tiny_transducer.element_index(-1, 0)

    def test_element_position_consistent_with_flat_array(self, tiny_transducer):
        ex, ey = tiny_transducer.shape
        for ix, iy in [(0, 0), (1, 3), (ex - 1, ey - 1)]:
            flat = tiny_transducer.positions[tiny_transducer.element_index(ix, iy)]
            np.testing.assert_allclose(
                tiny_transducer.element_position(ix, iy), flat)

    def test_grid_positions_match_flat_positions(self, tiny_transducer):
        xx, yy = tiny_transducer.grid_positions()
        np.testing.assert_allclose(xx.ravel(), tiny_transducer.positions[:, 0])
        np.testing.assert_allclose(yy.ravel(), tiny_transducer.positions[:, 1])

    def test_pitch_between_neighbours(self, small_transducer):
        pitch = small_transducer.config.pitch
        np.testing.assert_allclose(np.diff(small_transducer.x), pitch)
        np.testing.assert_allclose(np.diff(small_transducer.y), pitch)

    def test_from_transducer_config_directly(self):
        config = TransducerConfig(elements_x=3, elements_y=5, pitch=1e-3)
        transducer = MatrixTransducer.from_config(config)
        assert transducer.shape == (3, 5)
        assert transducer.element_count == 15

    def test_quadrant_mask_selects_quarter_for_even_grid(self, small_transducer):
        mask = small_transducer.quadrant_mask()
        # Even x even grid with no element exactly at zero: exactly a quarter.
        assert np.count_nonzero(mask) == small_transducer.element_count // 4

    def test_quadrant_mask_odd_grid_includes_axes(self):
        config = TransducerConfig(elements_x=5, elements_y=5, pitch=1e-3)
        transducer = MatrixTransducer.from_config(config)
        mask = transducer.quadrant_mask()
        # 3x3 of the 5x5 grid has non-negative coordinates.
        assert np.count_nonzero(mask) == 9

    def test_symmetry_of_element_positions(self, small_transducer):
        # For every element there is a mirrored element with negated x and y.
        positions = small_transducer.positions
        mirrored = positions * np.array([-1.0, -1.0, 1.0])
        for row in mirrored:
            distances = np.linalg.norm(positions - row, axis=1)
            assert distances.min() < 1e-12
