"""Tests for repro.core.multi_origin: synthetic-aperture support."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import paper_system
from repro.core.exact import ExactDelayEngine
from repro.core.multi_origin import (
    MultiOriginTableFree,
    MultiOriginTableSteer,
    OriginSchedule,
    synthetic_aperture_cost_comparison,
)


class TestOriginSchedule:
    def test_single_center(self):
        schedule = OriginSchedule.single_center()
        assert schedule.count == 1
        np.testing.assert_allclose(schedule.origins, [[0, 0, 0]])

    def test_virtual_sources_behind_probe(self, small):
        schedule = OriginSchedule.virtual_sources_behind_probe(small, count=5)
        assert schedule.count == 5
        assert np.all(schedule.origins[:, 2] < 0)          # behind the probe
        assert np.all(np.abs(schedule.origins[:, 0])
                      <= small.transducer.aperture_x / 2 + 1e-12)

    def test_translated_subapertures(self, small):
        schedule = OriginSchedule.translated_subapertures(small, count=4)
        assert schedule.count == 4
        np.testing.assert_allclose(schedule.origins[:, 2], 0.0)
        # Origins are symmetric about the aperture centre.
        np.testing.assert_allclose(schedule.origins[:, 0],
                                   -schedule.origins[::-1, 0])

    def test_invalid_counts_rejected(self, small):
        with pytest.raises(ValueError):
            OriginSchedule.virtual_sources_behind_probe(small, count=0)
        with pytest.raises(ValueError):
            OriginSchedule.translated_subapertures(small, count=0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            OriginSchedule(origins=np.zeros((3, 2)))


class TestMultiOriginTableSteer:
    @pytest.fixture(scope="class")
    def generator(self, tiny):
        schedule = OriginSchedule.virtual_sources_behind_probe(tiny, count=3)
        return MultiOriginTableSteer.from_config(tiny, schedule)

    def test_reference_scanline_shape(self, generator, tiny):
        reference = generator.reference_scanline(0)
        assert reference.shape == (tiny.volume.n_depth,
                                   tiny.transducer.element_count)

    def test_origin_changes_reference_delays(self, generator):
        a = generator.reference_scanline(0)
        b = generator.reference_scanline(1)
        assert not np.allclose(a, b)

    def test_centered_origin_matches_single_origin_engine(self, tiny):
        schedule = OriginSchedule.single_center()
        generator = MultiOriginTableSteer.from_config(tiny, schedule)
        exact = ExactDelayEngine.from_config(tiny)
        depths = generator.grid.depths
        points = np.stack([np.zeros_like(depths), np.zeros_like(depths), depths],
                          axis=-1)
        np.testing.assert_allclose(generator.reference_scanline(0),
                                   exact.delays_samples(points))

    def test_steered_delays_approximate_exact(self, generator, tiny):
        """The steered table stays within a few samples of the exact delays
        for this small geometry, for every origin."""
        i_theta = tiny.volume.n_theta // 2
        i_phi = tiny.volume.n_phi // 2
        for origin_index in range(generator.schedule.count):
            approx = generator.scanline_delays_samples(origin_index, i_theta, i_phi)
            exact = generator.exact_scanline_delays(origin_index, i_theta, i_phi)
            assert np.mean(np.abs(approx - exact)) < 3.0

    def test_invalid_origin_index(self, generator):
        with pytest.raises(IndexError):
            generator.reference_scanline(99)

    def test_storage_grows_with_origin_count(self, tiny):
        one = MultiOriginTableSteer.from_config(tiny, OriginSchedule.single_center())
        many = MultiOriginTableSteer.from_config(
            tiny, OriginSchedule.virtual_sources_behind_probe(tiny, count=4))
        assert many.total_reference_entries() > one.total_reference_entries()
        assert many.storage_megabits() > one.storage_megabits()

    def test_off_center_origin_loses_symmetry_pruning(self, tiny):
        centered = MultiOriginTableSteer.from_config(
            tiny, OriginSchedule.single_center())
        shifted = MultiOriginTableSteer.from_config(
            tiny, OriginSchedule(origins=np.array([[1e-3, 0.0, 0.0]])))
        assert shifted.reference_entries_for_origin(0) > \
            centered.reference_entries_for_origin(0)

    def test_bandwidth_independent_of_origin_count(self, tiny):
        one = MultiOriginTableSteer.from_config(tiny, OriginSchedule.single_center())
        many = MultiOriginTableSteer.from_config(
            tiny, OriginSchedule.virtual_sources_behind_probe(tiny, count=8))
        assert one.dram_bandwidth_bytes_per_second() == pytest.approx(
            many.dram_bandwidth_bytes_per_second())


class TestMultiOriginTableFree:
    def test_storage_is_zero_regardless_of_origins(self, tiny):
        schedule = OriginSchedule.virtual_sources_behind_probe(tiny, count=6)
        generator = MultiOriginTableFree.from_config(tiny, schedule)
        assert generator.table_storage_megabits() == 0.0
        assert generator.segment_count() > 0

    def test_per_origin_delays_match_standalone_generator(self, tiny):
        from repro.core.tablefree import TableFreeDelayGenerator
        schedule = OriginSchedule.translated_subapertures(tiny, count=2)
        multi = MultiOriginTableFree.from_config(tiny, schedule)
        standalone = TableFreeDelayGenerator.from_config(
            tiny, origin=schedule.origins[1])
        np.testing.assert_allclose(
            multi.scanline_delays_samples(1, 2, 3),
            standalone.scanline_delays_samples(2, 3))

    def test_invalid_origin_index(self, tiny):
        generator = MultiOriginTableFree.from_config(
            tiny, OriginSchedule.single_center())
        with pytest.raises(IndexError):
            generator.scanline_delays_samples(5, 0, 0)


class TestCostComparison:
    def test_paper_scale_single_origin_matches_section5(self):
        rows = synthetic_aperture_cost_comparison(paper_system(),
                                                  origin_counts=(1,))
        assert rows[0]["tablesteer_entries"] == pytest.approx(2.5e6)
        assert rows[0]["tablesteer_megabits_18b"] == pytest.approx(45.0)

    def test_storage_grows_superlinearly_off_center(self):
        rows = synthetic_aperture_cost_comparison(paper_system(),
                                                  origin_counts=(1, 2, 4))
        entries = [row["tablesteer_entries"] for row in rows]
        assert entries[1] > 2 * entries[0]       # off-centre origins lose pruning
        assert entries[2] > entries[1]

    def test_tablefree_always_zero(self):
        rows = synthetic_aperture_cost_comparison(paper_system())
        assert all(row["tablefree_megabits"] == 0.0 for row in rows)
