"""Tests for repro.core.reference_table: the broadside delay table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import ExactDelayEngine
from repro.core.reference_table import ReferenceDelayTable, _fold_axis
from repro.fixedpoint.format import REFERENCE_DELAY_14B, REFERENCE_DELAY_18B


@pytest.fixture(scope="module")
def table(request):
    from repro.config import tiny_system
    return ReferenceDelayTable.build(tiny_system())


@pytest.fixture(scope="module")
def small_table():
    from repro.config import small_system
    return ReferenceDelayTable.build(small_system())


class TestFoldAxis:
    def test_even_symmetric_axis(self):
        coords = np.array([-1.5, -0.5, 0.5, 1.5])
        index_map, kept = _fold_axis(coords)
        assert len(kept) == 2
        np.testing.assert_allclose(coords[kept], [0.5, 1.5])
        # |-1.5| maps to the 1.5 slot, |-0.5| to the 0.5 slot.
        np.testing.assert_array_equal(index_map, [1, 0, 0, 1])

    def test_odd_axis_with_zero(self):
        coords = np.array([-2.0, -1.0, 0.0, 1.0, 2.0])
        index_map, kept = _fold_axis(coords)
        assert len(kept) == 3
        np.testing.assert_array_equal(index_map, [2, 1, 0, 1, 2])


class TestTableValues:
    def test_full_table_shape(self, table):
        ex = table.transducer.config.elements_x
        ey = table.transducer.config.elements_y
        n_depth = len(table.grid.depths)
        assert table.delays.shape == (ex, ey, n_depth)

    def test_matches_exact_engine_on_axis(self, table):
        """Table entries equal exact delays for on-axis reference points."""
        system = table.system
        exact = ExactDelayEngine.from_config(system)
        i_depth = len(table.grid.depths) // 2
        point = np.array([[0.0, 0.0, table.grid.depths[i_depth]]])
        exact_samples = exact.delays_samples(point)[0]
        ex, ey = table.transducer.shape
        table_slice = table.delays[:, :, i_depth].ravel()
        np.testing.assert_allclose(table_slice, exact_samples, rtol=1e-12)

    def test_delays_increase_with_depth(self, table):
        assert np.all(np.diff(table.delays, axis=2) > 0)

    def test_delays_increase_with_element_offset(self, table):
        # At fixed depth, elements farther from the axis have larger delays.
        mid_depth = table.delays.shape[2] // 2
        slice_ = table.delays[:, :, mid_depth]
        center = slice_.min()
        corner = slice_[0, 0]
        assert corner > center

    def test_table_symmetry(self, table):
        np.testing.assert_allclose(table.delays, table.delays[::-1, :, :])
        np.testing.assert_allclose(table.delays, table.delays[:, ::-1, :])


class TestQuadrantPruning:
    def test_entry_counts(self, table):
        ex, ey = table.transducer.shape
        n_depth = len(table.grid.depths)
        assert table.full_entry_count == ex * ey * n_depth
        assert table.quadrant_entry_count == (ex // 2) * (ey // 2) * n_depth

    def test_symmetry_savings_close_to_three_quarters(self, table):
        assert table.symmetry_savings == pytest.approx(0.75, abs=0.05)

    def test_lookup_reconstructs_full_slice(self, table):
        for i_depth in (0, len(table.grid.depths) // 2, len(table.grid.depths) - 1):
            reconstructed = table.lookup(i_depth)
            np.testing.assert_allclose(reconstructed,
                                       table.delays[:, :, i_depth])

    def test_lookup_vectorised_over_depths(self, table):
        depths = np.array([0, 3, 7])
        stacked = table.lookup(depths)
        assert stacked.shape == (3, *table.transducer.shape)
        for k, i_depth in enumerate(depths):
            np.testing.assert_allclose(stacked[k], table.delays[:, :, i_depth])

    def test_nappe_slice_alias(self, table):
        np.testing.assert_allclose(table.nappe_slice(2), table.lookup(2))

    def test_paper_scale_entry_count_closed_form(self, paper):
        # Do not build the paper table; check the closed-form count only.
        ex, ey = paper.transducer.elements_x, paper.transducer.elements_y
        quadrant = (ex // 2) * (ey // 2) * paper.volume.n_depth
        assert quadrant == 2_500_000


class TestStorage:
    def test_storage_bits_scale_with_format(self, table):
        assert table.storage_bits(REFERENCE_DELAY_18B) == \
            table.quadrant_entry_count * 18
        assert table.storage_bits(REFERENCE_DELAY_14B) == \
            table.quadrant_entry_count * 14

    def test_storage_megabits(self, small_table):
        assert small_table.storage_megabits(REFERENCE_DELAY_18B) == pytest.approx(
            small_table.quadrant_entry_count * 18 / 1e6)

    def test_quantized_quadrant_within_half_lsb(self, small_table):
        quantized = small_table.quantized_quadrant(REFERENCE_DELAY_18B)
        error = quantized - small_table.quadrant
        assert np.max(np.abs(error)) <= REFERENCE_DELAY_18B.resolution / 2 + 1e-12


class TestDirectivity:
    def test_mask_shape(self, table):
        assert table.directivity_mask().shape == table.delays.shape

    def test_shallow_steep_entries_pruned(self, table):
        mask = table.directivity_mask()
        # The farthest-corner element at the shallowest depth is far off-axis.
        assert not mask[0, 0, 0]
        # The central region at depth is well inside the cone.
        ex, ey = table.transducer.shape
        assert mask[ex // 2, ey // 2, -1]

    def test_prunable_fraction_between_zero_and_one(self, table):
        fraction = table.prunable_fraction()
        assert 0.0 <= fraction < 1.0

    def test_deeper_entries_less_prunable(self, table):
        mask = table.directivity_mask()
        shallow_kept = np.count_nonzero(mask[:, :, 0])
        deep_kept = np.count_nonzero(mask[:, :, -1])
        assert deep_kept >= shallow_kept
