"""Tests for repro.beamformer.image: envelope, compression and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beamformer.image import (
    contrast_ratio_db,
    envelope,
    log_compress,
    normalized_rms_difference,
    point_spread_metrics,
)


class TestEnvelope:
    def test_envelope_of_modulated_tone_is_smooth(self):
        t = np.arange(512) / 32e6
        carrier = np.cos(2 * np.pi * 4e6 * t)
        window = np.exp(-0.5 * ((t - t.mean()) / 2e-6) ** 2)
        rf = window * carrier
        env = envelope(rf)
        # The envelope should track the Gaussian window, not the carrier.
        np.testing.assert_allclose(env[100:-100], window[100:-100], atol=0.05)

    def test_envelope_nonnegative(self, rng):
        rf = rng.normal(size=256)
        assert np.all(envelope(rf) >= 0)

    def test_short_trace_falls_back_to_abs(self):
        rf = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(envelope(rf), np.abs(rf))

    def test_axis_argument(self, rng):
        rf = rng.normal(size=(4, 128))
        env_rows = envelope(rf, axis=1)
        for i in range(4):
            np.testing.assert_allclose(env_rows[i], envelope(rf[i]))


class TestLogCompress:
    def test_peak_maps_to_zero_db(self, rng):
        env = np.abs(rng.normal(size=100)) + 0.1
        db = log_compress(env)
        assert db.max() == pytest.approx(0.0)

    def test_range_clipped_to_dynamic_range(self, rng):
        env = np.concatenate([[1.0], np.full(9, 1e-9)])
        db = log_compress(env, dynamic_range_db=40.0)
        assert db.min() == pytest.approx(-40.0)

    def test_all_zero_image(self):
        db = log_compress(np.zeros(16), dynamic_range_db=50.0)
        np.testing.assert_allclose(db, -50.0)

    def test_factor_of_ten_is_twenty_db(self):
        db = log_compress(np.array([1.0, 0.1]))
        assert db[0] - db[1] == pytest.approx(20.0)


class TestPointSpreadMetrics:
    def test_ideal_gaussian_profile(self):
        x = np.arange(200)
        sigma = 5.0
        profile = np.exp(-0.5 * ((x - 100) / sigma) ** 2)
        metrics = point_spread_metrics(profile)
        assert metrics.peak_index == 100
        assert metrics.peak_value == pytest.approx(1.0)
        expected_fwhm = 2 * np.sqrt(2 * np.log(2)) * sigma
        assert metrics.fwhm_samples == pytest.approx(expected_fwhm, rel=0.05)

    def test_narrower_profile_has_smaller_fwhm(self):
        x = np.arange(200)
        narrow = np.exp(-0.5 * ((x - 100) / 3.0) ** 2)
        wide = np.exp(-0.5 * ((x - 100) / 9.0) ** 2)
        assert point_spread_metrics(narrow).fwhm_samples < \
            point_spread_metrics(wide).fwhm_samples

    def test_sidelobe_level(self):
        x = np.arange(300)
        main = np.exp(-0.5 * ((x - 100) / 4.0) ** 2)
        sidelobe = 0.1 * np.exp(-0.5 * ((x - 200) / 4.0) ** 2)
        metrics = point_spread_metrics(main + sidelobe)
        assert metrics.peak_to_sidelobe_db == pytest.approx(20.0, abs=1.0)

    def test_profile_without_sidelobes(self):
        profile = np.zeros(50)
        profile[25] = 1.0
        metrics = point_spread_metrics(profile)
        assert metrics.peak_to_sidelobe_db > 60

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            point_spread_metrics(np.array([]))

    def test_all_zero_profile(self):
        metrics = point_spread_metrics(np.zeros(10))
        assert metrics.peak_value == 0.0


class TestContrastRatio:
    def test_anechoic_region_gives_positive_contrast(self, rng):
        image = np.abs(rng.normal(1.0, 0.1, (32, 32)))
        inside = np.zeros_like(image, dtype=bool)
        inside[12:20, 12:20] = True
        image[inside] *= 0.1
        contrast = contrast_ratio_db(image, inside, ~inside)
        assert contrast == pytest.approx(20.0, abs=2.0)

    def test_identical_regions_give_zero(self, rng):
        image = np.ones((16, 16))
        inside = np.zeros_like(image, dtype=bool)
        inside[:8] = True
        assert contrast_ratio_db(image, inside, ~inside) == pytest.approx(0.0)

    def test_empty_mask_rejected(self):
        image = np.ones((4, 4))
        with pytest.raises(ValueError):
            contrast_ratio_db(image, np.zeros_like(image, dtype=bool),
                              np.ones_like(image, dtype=bool))


class TestNrms:
    def test_identical_images_give_zero(self, rng):
        image = rng.normal(size=(8, 8))
        assert normalized_rms_difference(image, image) == 0.0

    def test_scaling_relationship(self, rng):
        image = rng.normal(size=(16, 16))
        assert normalized_rms_difference(image, 2 * image) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            normalized_rms_difference(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_zero_reference(self):
        assert normalized_rms_difference(np.zeros(4), np.zeros(4)) == 0.0
        assert normalized_rms_difference(np.zeros(4), np.ones(4)) == np.inf
