"""Tests for repro.core.exact: the reference delay computation (Eq. 2/3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import (
    ExactDelayEngine,
    propagation_delay,
    receive_delay,
    transmit_delay,
)
from repro.geometry.coordinates import spherical_to_cartesian


class TestPropagationDelay:
    def test_single_point_single_element(self):
        origin = np.zeros(3)
        point = np.array([[0.0, 0.0, 0.0154]])       # 15.4 mm deep
        element = np.array([[0.0, 0.0, 0.0]])
        delay = propagation_delay(origin, point, element, 1540.0)
        # Two-way 2 * 15.4 mm at 1540 m/s = 20 us.
        assert delay[0, 0] == pytest.approx(20e-6)

    def test_off_axis_element(self):
        origin = np.zeros(3)
        point = np.array([[0.0, 0.0, 0.03]])
        element = np.array([[0.04, 0.0, 0.0]])
        delay = propagation_delay(origin, point, element, 1540.0)
        expected = (0.03 + 0.05) / 1540.0
        assert delay[0, 0] == pytest.approx(expected)

    def test_matrix_shape(self, rng):
        origin = np.zeros(3)
        points = rng.normal(size=(7, 3)) + np.array([0, 0, 0.05])
        elements = rng.normal(scale=0.001, size=(11, 3)) * np.array([1, 1, 0])
        delays = propagation_delay(origin, points, elements, 1540.0)
        assert delays.shape == (7, 11)

    def test_equals_transmit_plus_receive(self, rng):
        origin = np.array([0.001, -0.002, 0.0])
        points = rng.normal(size=(5, 3)) + np.array([0, 0, 0.05])
        elements = rng.normal(scale=0.005, size=(6, 3)) * np.array([1, 1, 0])
        total = propagation_delay(origin, points, elements, 1540.0)
        split = (transmit_delay(origin, points, 1540.0)[:, None]
                 + receive_delay(points, elements, 1540.0))
        np.testing.assert_allclose(total, split)

    def test_delays_nonnegative(self, rng):
        origin = np.zeros(3)
        points = np.abs(rng.normal(size=(20, 3)))
        elements = rng.normal(scale=0.01, size=(8, 3)) * np.array([1, 1, 0])
        assert np.all(propagation_delay(origin, points, elements, 1540.0) >= 0)

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay(np.zeros(3), np.zeros((2, 2)), np.zeros((3, 3)), 1540.0)

    def test_speed_of_sound_scaling(self):
        origin = np.zeros(3)
        point = np.array([[0.0, 0.0, 0.01]])
        element = np.array([[0.0, 0.0, 0.0]])
        slow = propagation_delay(origin, point, element, 1000.0)
        fast = propagation_delay(origin, point, element, 2000.0)
        assert slow[0, 0] == pytest.approx(2 * fast[0, 0])


class TestExactDelayEngine:
    def test_delays_samples_unit_conversion(self, tiny_exact, tiny):
        point = np.array([[0.0, 0.0, 0.01]])
        seconds = tiny_exact.delays_seconds(point)
        samples = tiny_exact.delays_samples(point)
        np.testing.assert_allclose(
            samples, seconds * tiny.acoustic.sampling_frequency)

    def test_delay_indices_are_rounded_samples(self, tiny_exact):
        point = np.array([[0.001, -0.002, 0.015]])
        samples = tiny_exact.delays_samples(point)
        indices = tiny_exact.delay_indices(point)
        np.testing.assert_array_equal(indices, np.floor(samples + 0.5))
        assert indices.dtype == np.int64

    def test_scanline_delays_shape(self, tiny_exact, tiny):
        delays = tiny_exact.scanline_delays_samples(0, 0)
        assert delays.shape == (tiny.volume.n_depth, tiny.transducer.element_count)

    def test_nappe_delays_shape(self, tiny_exact, tiny):
        delays = tiny_exact.nappe_delays_samples(3)
        assert delays.shape == (tiny.volume.n_theta, tiny.volume.n_phi,
                                tiny.transducer.element_count)

    def test_nappe_and_scanline_views_agree(self, tiny_exact):
        nappe = tiny_exact.nappe_delays_samples(5)
        scanline = tiny_exact.scanline_delays_samples(2, 3)
        np.testing.assert_allclose(nappe[2, 3], scanline[5])

    def test_delays_increase_with_depth_on_axis(self, tiny_exact):
        delays = tiny_exact.scanline_delays_samples(0, 0)
        centre_element = tiny_exact.transducer.element_count // 2
        assert np.all(np.diff(delays[:, centre_element]) > 0)

    def test_closest_element_has_smallest_receive_delay(self, tiny_exact):
        # For a steered point, the element nearest to it in x has the
        # smallest two-way delay (transmit part is common to all elements).
        theta = tiny_exact.grid.thetas[-1]
        depth = tiny_exact.grid.depths[-1]
        point = spherical_to_cartesian(theta, 0.0, depth).reshape(1, 3)
        delays = tiny_exact.delays_seconds(point)[0]
        distances = np.linalg.norm(tiny_exact.transducer.positions
                                   - point[0][None, :], axis=1)
        assert np.argmin(delays) == np.argmin(distances)

    def test_custom_origin_shifts_transmit_leg(self, tiny):
        shifted_origin = np.array([0.0, 0.0, -0.001])
        engine_centered = ExactDelayEngine.from_config(tiny)
        engine_shifted = ExactDelayEngine.from_config(tiny, origin=shifted_origin)
        point = np.array([[0.0, 0.0, 0.01]])
        extra_path = 0.001 / tiny.acoustic.speed_of_sound
        np.testing.assert_allclose(
            engine_shifted.delays_seconds(point),
            engine_centered.delays_seconds(point) + extra_path)

    def test_max_delay_bounds_all_grid_delays(self, tiny_exact):
        bound = tiny_exact.max_delay_samples()
        corner_scanline = tiny_exact.scanline_delays_samples(
            len(tiny_exact.grid.thetas) - 1, len(tiny_exact.grid.phis) - 1)
        assert corner_scanline.max() <= bound + 1e-6

    def test_echo_buffer_covers_all_grid_delays(self, tiny_exact, tiny):
        # Every delay index for on-grid points must fit the echo buffer.
        indices = tiny_exact.delay_indices(
            tiny_exact.grid.scanline_points(0, 0))
        assert indices.max() < tiny.echo_buffer_samples * 1.3

    def test_symmetric_elements_have_symmetric_delays(self, tiny_exact):
        """Broadside points see mirrored elements at identical delays."""
        point = np.array([[0.0, 0.0, 0.01]])
        delays = tiny_exact.delays_seconds(point)[0]
        ex, ey = tiny_exact.transducer.shape
        delays_grid = delays.reshape(ex, ey)
        np.testing.assert_allclose(delays_grid, delays_grid[::-1, :])
        np.testing.assert_allclose(delays_grid, delays_grid[:, ::-1])
