"""Tests for repro.acoustics.pulse: the Gaussian transmit pulse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.pulse import GaussianPulse
from repro.config import AcousticConfig


@pytest.fixture(scope="module")
def pulse():
    return GaussianPulse.from_config(AcousticConfig())


class TestPulseShape:
    def test_from_config_carries_frequencies(self, pulse):
        assert pulse.center_frequency == 4.0e6
        assert pulse.sampling_frequency == 32.0e6
        assert pulse.fractional_bandwidth == pytest.approx(1.0)

    def test_peak_at_time_zero(self, pulse):
        assert pulse.evaluate(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_envelope_symmetric(self, pulse):
        t = np.linspace(-1e-6, 1e-6, 201)
        envelope = pulse.envelope(t)
        np.testing.assert_allclose(envelope, envelope[::-1])

    def test_envelope_decays(self, pulse):
        assert pulse.envelope(np.array([4 * pulse.sigma_t]))[0] < 1e-3

    def test_amplitude_bounded_by_envelope(self, pulse):
        t = np.linspace(-2e-6, 2e-6, 1001)
        assert np.all(np.abs(pulse.evaluate(t)) <= pulse.envelope(t) + 1e-12)

    def test_oscillates_at_center_frequency(self, pulse):
        # Zero crossings of the carrier occur every half period.
        half_period = 1.0 / (2 * pulse.center_frequency)
        t = np.array([half_period / 2, 3 * half_period / 2])
        values = pulse.evaluate(t)
        assert abs(values[0]) < 1e-6
        assert abs(values[1]) < 1e-6

    def test_sigma_positive_and_reasonable(self, pulse):
        # 100 % fractional bandwidth at 4 MHz: sigma_t in the ~tens of ns.
        assert 1e-9 < pulse.sigma_t < 1e-6

    def test_duration_is_eight_sigma(self, pulse):
        assert pulse.duration == pytest.approx(8 * pulse.sigma_t)


class TestWaveform:
    def test_waveform_length_matches_support(self, pulse):
        t, amplitude = pulse.waveform()
        assert len(t) == len(amplitude)
        assert len(t) >= pulse.sample_support()

    def test_waveform_centred(self, pulse):
        t, amplitude = pulse.waveform()
        assert t[0] == pytest.approx(-t[-1])
        assert np.argmax(np.abs(amplitude)) == pytest.approx(len(t) // 2, abs=1)

    def test_sample_support_scales_with_bandwidth(self):
        wide = GaussianPulse(4e6, 1.0, 32e6)
        narrow = GaussianPulse(4e6, 0.3, 32e6)
        assert narrow.sample_support() > wide.sample_support()

    def test_narrowband_pulse_has_more_cycles(self):
        narrow = GaussianPulse(4e6, 0.2, 64e6)
        t, amplitude = narrow.waveform()
        # Count sign changes as a proxy for carrier cycles under the envelope.
        sign_changes = np.count_nonzero(np.diff(np.sign(amplitude)) != 0)
        wide = GaussianPulse(4e6, 1.0, 64e6)
        _, wide_amplitude = wide.waveform()
        wide_changes = np.count_nonzero(np.diff(np.sign(wide_amplitude)) != 0)
        assert sign_changes > wide_changes
