"""Tests for repro.core.steering: the correction-plane computation (Eq. 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.steering import SteeringCorrections, correction_plane
from repro.fixedpoint.format import CORRECTION_14B, CORRECTION_18B


@pytest.fixture(scope="module")
def corrections():
    from repro.config import tiny_system
    return SteeringCorrections.build(tiny_system())


class TestCorrectionPlane:
    def test_zero_steering_gives_zero_plane(self):
        x = np.linspace(-0.01, 0.01, 8)
        y = np.linspace(-0.01, 0.01, 8)
        plane = correction_plane(x, y, theta=0.0, phi=0.0, speed_of_sound=1540.0)
        np.testing.assert_allclose(plane, 0.0, atol=1e-18)

    def test_plane_is_linear_in_element_coordinates(self):
        x = np.linspace(-0.01, 0.01, 16)
        y = np.linspace(-0.01, 0.01, 16)
        plane = correction_plane(x, y, theta=0.4, phi=-0.3, speed_of_sound=1540.0)
        # Second differences along both axes vanish for a plane.
        np.testing.assert_allclose(np.diff(plane, n=2, axis=0), 0.0, atol=1e-18)
        np.testing.assert_allclose(np.diff(plane, n=2, axis=1), 0.0, atol=1e-18)

    def test_matches_equation_7(self):
        x = np.array([-0.005, 0.0, 0.005])
        y = np.array([-0.004, 0.004])
        theta, phi, c = 0.35, -0.2, 1540.0
        plane = correction_plane(x, y, theta, phi, c)
        expected = -(x[:, None] * np.cos(phi) * np.sin(theta)
                     + y[None, :] * np.sin(phi)) / c
        np.testing.assert_allclose(plane, expected)

    def test_sample_units_scaling(self):
        x = np.array([0.005])
        y = np.array([0.0])
        seconds = correction_plane(x, y, 0.3, 0.0, 1540.0)
        samples = correction_plane(x, y, 0.3, 0.0, 1540.0,
                                   sampling_frequency=32e6)
        np.testing.assert_allclose(samples, seconds * 32e6)

    def test_antisymmetric_in_theta(self):
        x = np.linspace(-0.01, 0.01, 8)
        y = np.zeros(1)
        pos = correction_plane(x, y, 0.4, 0.0, 1540.0)
        neg = correction_plane(x, y, -0.4, 0.0, 1540.0)
        np.testing.assert_allclose(pos, -neg)


class TestSteeringCorrections:
    def test_term_shapes(self, corrections, tiny):
        ex = tiny.transducer.elements_x
        ey = tiny.transducer.elements_y
        assert corrections.x_terms.shape == (ex, tiny.volume.n_theta,
                                             tiny.volume.n_phi)
        assert corrections.y_terms.shape == (ey, tiny.volume.n_phi)

    def test_plane_matches_direct_formula(self, corrections, tiny):
        i_theta, i_phi = 2, 5
        theta = corrections.grid.thetas[i_theta]
        phi = corrections.grid.phis[i_phi]
        expected = correction_plane(
            corrections.transducer.x, corrections.transducer.y, theta, phi,
            tiny.acoustic.speed_of_sound,
            sampling_frequency=tiny.acoustic.sampling_frequency)
        np.testing.assert_allclose(corrections.plane(i_theta, i_phi), expected)

    def test_plane_seconds_conversion(self, corrections, tiny):
        plane_samples = corrections.plane(1, 1)
        plane_seconds = corrections.plane_seconds(1, 1)
        np.testing.assert_allclose(
            plane_samples,
            plane_seconds * tiny.acoustic.sampling_frequency)

    def test_centre_scanline_of_odd_grid_is_zero(self, tiny):
        system = tiny.with_volume(n_theta=5, n_phi=5)
        corrections = SteeringCorrections.build(system)
        np.testing.assert_allclose(corrections.plane(2, 2), 0.0, atol=1e-12)

    def test_precomputed_value_count_formula(self, corrections, tiny):
        ex, ey = tiny.transducer.elements_x, tiny.transducer.elements_y
        n_theta, n_phi = tiny.volume.n_theta, tiny.volume.n_phi
        expected = ex * n_theta * ((n_phi + 1) // 2) + ey * n_phi
        assert corrections.precomputed_value_count == expected

    def test_paper_scale_count_is_832k(self, paper):
        corrections_count = (paper.transducer.elements_x * paper.volume.n_theta
                             * (paper.volume.n_phi // 2)
                             + paper.transducer.elements_y * paper.volume.n_phi)
        assert corrections_count == 832_000

    def test_storage_bits(self, corrections):
        assert corrections.storage_bits(CORRECTION_18B) == \
            corrections.precomputed_value_count * 18
        assert corrections.storage_bits(CORRECTION_14B) == \
            corrections.precomputed_value_count * 14

    def test_quantized_plane_error_bounded(self, corrections):
        plane = corrections.plane(0, 0)
        quantized = corrections.quantized_plane(0, 0, CORRECTION_18B)
        assert np.max(np.abs(quantized - plane)) <= \
            CORRECTION_18B.resolution / 2 + 1e-12

    def test_max_correction_bounds_all_planes(self, corrections, tiny):
        bound = corrections.max_correction_samples()
        worst = 0.0
        for i_theta in range(0, tiny.volume.n_theta, 3):
            for i_phi in range(0, tiny.volume.n_phi, 3):
                worst = max(worst, np.max(np.abs(corrections.plane(i_theta, i_phi))))
        assert worst <= bound + 1e-9

    def test_cos_phi_symmetry_of_x_terms(self, corrections, tiny):
        """x-terms are symmetric in phi about the centre (cos is even),
        which is what allows storing only half the phi axis."""
        x_terms = corrections.x_terms
        np.testing.assert_allclose(x_terms, x_terms[:, :, ::-1], atol=1e-18)
