"""Tests for the repro.cli command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["list"], ["run", "E1"], ["table2"], ["specs"],
                     ["table2", "--system", "small"],
                     ["specs", "--system", "tiny"],
                     ["stream"],
                     ["stream", "--system", "tiny", "--backend", "sharded",
                      "--architecture", "tablesteer", "--frames", "4"]):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_unknown_backend_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["stream", "--backend", "gpu"])

    def test_unknown_system_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["specs", "--system", "gigantic"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for i in range(1, 11):
            assert f"E{i}" in output

    def test_specs_prints_table1_numbers(self, capsys):
        assert main(["specs", "--system", "paper"]) == 0
        output = capsys.readouterr().out
        assert "100 x 100" in output
        assert "32 MHz" in output
        assert "128 x 128 x 1000" in output

    def test_table2_prints_rows(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "TABLEFREE" in output
        assert "TABLESTEER-18b" in output

    def test_run_single_cheap_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "traversal" in output.lower()
        assert "finished" in output

    def test_run_accepts_lowercase_id(self, capsys):
        assert main(["run", "e1"]) == 0
        assert "requirements" in capsys.readouterr().out.lower()

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_stream_reports_throughput_and_cache(self, capsys):
        assert main(["stream", "--system", "tiny", "--frames", "4",
                     "--backend", "vectorized"]) == 0
        output = capsys.readouterr().out
        assert "Streaming 4 frames" in output
        assert "volume rate" in output
        assert "3 hits, 1 misses" in output
