"""Tests for the repro.cli command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["list"], ["run", "E1"], ["table2"], ["specs"],
                     ["table2", "--system", "small"],
                     ["specs", "--system", "tiny"],
                     ["stream"], ["spec"],
                     ["run", "E10", "--system", "tiny",
                      "--set", "architecture=tablefree"],
                     ["spec", "--architecture", "tablesteer",
                      "--set", "architecture_options.total_bits=14"],
                     ["stream", "--system", "tiny", "--backend", "sharded",
                      "--architecture", "tablesteer", "--frames", "4"]):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_unknown_backend_rejected_with_registry_listing(self, capsys):
        # Names are validated against the registry at run time (so plugins
        # work), not by a closed argparse choices list.
        assert main(["stream", "--system", "tiny", "--backend", "gpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'gpu'" in err
        assert "reference" in err and "vectorized" in err and "sharded" in err

    def test_unknown_architecture_rejected_with_registry_listing(self, capsys):
        assert main(["stream", "--system", "tiny",
                     "--architecture", "magic"]) == 2
        err = capsys.readouterr().err
        assert "unknown architecture 'magic'" in err
        assert "tablesteer_float" in err

    def test_unknown_system_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["specs", "--system", "gigantic"])

    def test_unknown_stream_preset_lists_presets(self, capsys):
        assert main(["stream", "--system", "gigantic"]) == 2
        assert "paper, small, tiny" in capsys.readouterr().err


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for i in range(1, 11):
            assert f"E{i}" in output

    def test_list_prints_registered_plugins(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "Registered architectures:" in output
        assert "tablesteer_float" in output
        assert "Registered backends:" in output
        assert "sharded" in output
        assert "moving_point" in output

    def test_specs_prints_table1_numbers(self, capsys):
        assert main(["specs", "--system", "paper"]) == 0
        output = capsys.readouterr().out
        assert "100 x 100" in output
        assert "32 MHz" in output
        assert "128 x 128 x 1000" in output

    def test_table2_prints_rows(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "TABLEFREE" in output
        assert "TABLESTEER-18b" in output

    def test_run_single_cheap_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        output = capsys.readouterr().out
        assert "traversal" in output.lower()
        assert "finished" in output

    def test_run_accepts_lowercase_id(self, capsys):
        assert main(["run", "e1"]) == 0
        assert "requirements" in capsys.readouterr().out.lower()

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_stream_reports_throughput_and_cache(self, capsys):
        assert main(["stream", "--system", "tiny", "--frames", "4",
                     "--backend", "vectorized"]) == 0
        output = capsys.readouterr().out
        assert "Streaming 4 frames" in output
        assert "volume rate" in output
        assert "3 hits, 1 misses" in output

    def test_stream_defaults_to_vectorized(self, capsys):
        assert main(["stream", "--system", "tiny", "--frames", "2"]) == 0
        output = capsys.readouterr().out
        assert "backend=vectorized" in output
        assert "dtype=float64" in output

    def test_stream_dtype_and_batch_flags(self, capsys):
        assert main(["stream", "--system", "tiny", "--frames", "4",
                     "--dtype", "float32", "--batch", "2"]) == 0
        output = capsys.readouterr().out
        assert "dtype=float32" in output
        assert "batch=2" in output
        assert "frame   3" in output          # all frames still reported
        assert "1 hits, 1 misses" in output   # one plan lookup per batch

    def test_stream_bad_batch_rejected(self, capsys):
        assert main(["stream", "--system", "tiny", "--batch", "0"]) == 2
        assert "--batch" in capsys.readouterr().err

    def test_spec_precision_override(self, capsys):
        assert main(["spec", "--system", "tiny",
                     "--set", "precision=float32"]) == 0
        from repro.api import EngineSpec
        spec = EngineSpec.from_json(capsys.readouterr().out)
        assert spec.precision.value == "float32"

    def test_stream_qformat_flag(self, capsys):
        assert main(["stream", "--system", "tiny", "--frames", "2",
                     "--qformat", "18"]) == 0
        output = capsys.readouterr().out
        assert "quantized [delays U13.5" in output
        assert "1 hits, 1 misses" in output    # one quantized plan, reused

    def test_stream_bad_qformat_reported(self, capsys):
        assert main(["stream", "--system", "tiny",
                     "--qformat", "bogus"]) == 2
        assert "Q-format" in capsys.readouterr().err

    def test_spec_qformat_resolves_to_quantization_document(self, capsys):
        assert main(["spec", "--system", "tiny", "--qformat", "U13.5"]) == 0
        from repro.api import EngineSpec, QuantizationSpec
        spec = EngineSpec.from_json(capsys.readouterr().out)
        assert spec.quantization == QuantizationSpec.from_total_bits(18)

    def test_stream_memory_budget_runs_tiled(self, capsys):
        # A quarter-plan budget forces 4 tiles; the segment LRU shows up
        # as evictions in the cache summary and the stream still succeeds.
        assert main(["stream", "--system", "tiny", "--frames", "2",
                     "--memory-budget", "400K"]) == 0
        output = capsys.readouterr().out
        assert "volume rate" in output
        assert "evictions" in output

    def test_spec_memory_budget_normalised_to_bytes(self, capsys):
        assert main(["spec", "--system", "tiny",
                     "--memory-budget", "64K"]) == 0
        from repro.api import EngineSpec
        spec = EngineSpec.from_json(capsys.readouterr().out)
        assert spec.memory_budget_bytes == 65536

    def test_stream_too_small_memory_budget_exits_2(self, capsys):
        assert main(["stream", "--system", "tiny", "--frames", "1",
                     "--memory-budget", "10"]) == 2
        err = capsys.readouterr().err
        assert "raise the budget to at least 25600 bytes" in err

    def test_stream_garbage_memory_budget_exits_2(self, capsys):
        assert main(["stream", "--system", "tiny",
                     "--memory-budget", "lots"]) == 2
        assert "memory budget" in capsys.readouterr().err

    def test_serve_check_memory_budget(self, capsys):
        assert main(["serve", "--check", "--system", "tiny",
                     "--memory-budget", "1M"]) == 0
        from repro.server import ServerSpec
        spec = ServerSpec.from_json(capsys.readouterr().out)
        assert spec.session_memory_budget_bytes == 1 << 20

    def test_serve_too_small_memory_budget_exits_2(self, capsys):
        assert main(["serve", "--check", "--system", "tiny",
                     "--memory-budget", "10"]) == 2
        assert "raise the budget" in capsys.readouterr().err


class TestSpecWorkflow:
    def test_spec_prints_resolved_json(self, capsys):
        assert main(["spec", "--system", "tiny",
                     "--architecture", "tablesteer",
                     "--set", "architecture_options.total_bits=14"]) == 0
        from repro.api import EngineSpec
        spec = EngineSpec.from_json(capsys.readouterr().out)
        assert spec.system == "tiny"
        assert spec.architecture_options.total_bits == 14

    def test_spec_file_roundtrips_through_stream(self, tmp_path, capsys):
        path = tmp_path / "engine.json"
        assert main(["spec", "--system", "tiny",
                     "--architecture", "tablefree",
                     "--backend", "sharded", "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["stream", "--spec", str(path), "--frames", "2"]) == 0
        output = capsys.readouterr().out
        assert "architecture=tablefree" in output
        assert "backend=sharded" in output

    def test_set_overrides_spec_file(self, tmp_path, capsys):
        path = tmp_path / "engine.json"
        assert main(["spec", "--system", "tiny", "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["stream", "--spec", str(path), "--frames", "2",
                     "--set", "architecture=tablesteer"]) == 0
        assert "architecture=tablesteer" in capsys.readouterr().out

    def test_unwritable_out_path_reported(self, capsys):
        assert main(["spec", "--system", "tiny",
                     "--out", "/nonexistent/dir/e.json"]) == 2
        assert "cannot write spec file" in capsys.readouterr().err

    def test_missing_spec_file_reported(self, capsys):
        assert main(["stream", "--spec", "/nonexistent/engine.json"]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_bad_override_reported(self, capsys):
        assert main(["spec", "--set", "no_equals"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_run_accepts_spec_system(self, capsys):
        assert main(["run", "E2", "--system", "tiny"]) == 0
        assert "system: tiny" in capsys.readouterr().out

    def test_run_without_explicit_system_keeps_experiment_default(self, capsys):
        # --set alone must not swap the experiment onto EngineSpec's
        # default 'small' system: E1's own default is the paper system.
        assert main(["run", "E1", "--set", "cache_capacity=2"]) == 0
        output = capsys.readouterr().out
        assert "receive elements            : 10000" in output

    def test_run_rejects_invalid_override(self, capsys):
        assert main(["run", "E1", "--set", "backend=warp"]) == 2
        assert "unknown backend" in capsys.readouterr().err


class TestErrorPaths:
    """Every bad input exits non-zero with a message naming the problem."""

    def test_malformed_spec_json_reported(self, tmp_path, capsys):
        bad = tmp_path / "engine.json"
        bad.write_text("{not json")
        assert main(["stream", "--spec", str(bad)]) == 2
        assert "is not valid JSON" in capsys.readouterr().err

    def test_conflicting_set_overrides_reported(self, capsys):
        # Descending into a scalar with a dotted path would silently
        # clobber the first override; it must fail loudly instead.
        assert main(["spec", "--set", "system=tiny",
                     "--set", "system.depth_max=0.1"]) == 2
        err = capsys.readouterr().err
        assert "cannot apply override" in err and "not a mapping" in err

    def test_unknown_scheme_rejected_with_registry_listing(self, capsys):
        assert main(["stream", "--system", "tiny",
                     "--scheme", "quadruple"]) == 2
        err = capsys.readouterr().err
        assert "unknown scheme 'quadruple'" in err
        assert "planewave" in err


class TestCompiledBackendCli:
    """CLI surface of the optional numba backend: listed always, selectable
    only where numba is installed, actionable error everywhere else.  The
    unavailable paths pin the module flag so they run identically on the
    numba and numba-free CI legs."""

    def test_list_shows_compiled_backend(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "compiled" in output
        assert "fused" in output

    def test_list_marks_compiled_unavailability(self, capsys):
        from repro.kernels import numba_available
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert ("unavailable: numba is not installed" in output) \
            == (not numba_available())

    def test_stream_compiled_without_numba_exits_2(self, capsys,
                                                   monkeypatch):
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        assert main(["stream", "--system", "tiny", "--backend", "compiled",
                     "--frames", "1"]) == 2
        err = capsys.readouterr().err
        assert "numba" in err
        assert "pip install numba" in err
        assert "vectorized" in err      # names a working alternative

    def test_stream_compiled_quantized_exits_2(self, capsys, monkeypatch):
        # The quantized rejection is a design restriction, so it must not
        # depend on whether numba happens to be installed.
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        assert main(["stream", "--system", "tiny", "--backend", "compiled",
                     "--set", "quantization=18", "--frames", "1"]) == 2
        err = capsys.readouterr().err
        assert "quantized" in err
        assert "numba" not in err


class TestServeCommand:
    def test_serve_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "backpressure" in capsys.readouterr().out

    def test_serve_check_prints_resolved_spec(self, capsys):
        assert main(["serve", "--check", "--system", "tiny",
                     "--policy", "drop_oldest",
                     "--set", "queue_capacity=3"]) == 0
        out = capsys.readouterr().out
        assert '"policy": "drop_oldest"' in out
        assert '"queue_capacity": 3' in out
        assert '"system": "tiny"' in out

    def test_serve_runs_sessions_and_reports(self, capsys):
        assert main(["serve", "--system", "tiny", "--sessions", "2",
                     "--frames", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Serving 2 sessions x 2 frames" in out
        assert "session s0" in out and "session s1" in out
        assert "voxels/s" in out

    def test_serve_writes_metrics(self, tmp_path, capsys):
        out_file = tmp_path / "serve.prom"
        assert main(["serve", "--system", "tiny", "--sessions", "1",
                     "--frames", "1", "--metrics-out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "server_frames_total" in text
        assert 'quantile="0.99"' in text

    def test_serve_unknown_backend_rejected(self, capsys):
        assert main(["serve", "--check", "--backend", "gpu"]) == 2
        assert "unknown backend 'gpu'" in capsys.readouterr().err

    def test_serve_unknown_policy_rejected(self, capsys):
        assert main(["serve", "--check", "--policy", "newest"]) == 2
        err = capsys.readouterr().err
        assert "unknown backpressure policy" in err
        assert "drop_oldest" in err

    def test_serve_malformed_spec_json_reported(self, tmp_path, capsys):
        bad = tmp_path / "server.json"
        bad.write_text("{broken")
        assert main(["serve", "--check", "--spec", str(bad)]) == 2
        assert "is not valid JSON" in capsys.readouterr().err

    def test_serve_unknown_spec_field_rejected(self, capsys):
        assert main(["serve", "--check", "--set", "worker_count=4"]) == 2
        assert "unknown server spec field" in capsys.readouterr().err

    def test_serve_bad_session_count_rejected(self, capsys):
        assert main(["serve", "--sessions", "0"]) == 2
        assert "--sessions" in capsys.readouterr().err
