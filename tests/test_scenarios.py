"""Unit tests for repro.scenarios: schemes, events, delay split, scoring,
scan registry and the spec/CLI threading."""

from __future__ import annotations

import numpy as np
import pytest

from repro import tiny_system
from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.api import EngineSpec, ScanSpec, Session, SweepSpec
from repro.architectures import ARCHITECTURES
from repro.geometry.volume import FocalGrid
from repro.kernels import plan_key
from repro.registry import RegistryError
from repro.beamformer.das import DelayAndSumBeamformer
from repro.scenarios import (
    SCENARIOS,
    SCHEMES,
    SCORE_KEYS,
    SchemeEngine,
    TransmitAdjustedProvider,
    TransmitEvent,
    TransmitScheme,
    Wavefront,
    acquire_firings,
    resolve_scheme,
    score_volume,
)


@pytest.fixture(scope="module")
def grid(tiny):
    return FocalGrid.from_config(tiny)


@pytest.fixture(scope="module")
def simulator(tiny):
    return EchoSimulator.from_config(tiny)


@pytest.fixture(scope="module")
def phantom(tiny, grid):
    return point_target(depth=float(grid.depths[len(grid.depths) // 2]))


class TestTransmitEvent:
    def test_focused_event_is_centred(self):
        event = TransmitEvent.focused()
        assert event.is_centred_focused()
        assert event.wavefront is Wavefront.SPHERICAL

    def test_plane_wave_direction_is_unit(self):
        event = TransmitEvent.plane_wave(0.3, 0.1)
        assert np.isclose(np.linalg.norm(event.direction), 1.0)
        assert not event.is_centred_focused()

    def test_spherical_distance_matches_norm(self):
        event = TransmitEvent.focused(origin=np.array([0.001, 0.0, -0.002]))
        point = np.array([0.0, 0.01, 0.03])
        assert event.transmit_distance(point) == pytest.approx(
            np.linalg.norm(point - event.origin))
        np.testing.assert_allclose(
            event.transmit_distances(np.stack([point, point]))[0],
            event.transmit_distance(point))

    def test_plane_distance_is_projection(self):
        event = TransmitEvent.plane_wave(0.0)      # broadside: direction +z
        assert event.transmit_distance(np.array([0.005, 0.0, 0.03])) == \
            pytest.approx(0.03)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            TransmitEvent(origin=np.array([np.nan, 0, 0]))
        with pytest.raises(ValueError):
            TransmitEvent(wavefront=Wavefront.PLANE,
                          direction=np.zeros(3))

    def test_scheme_needs_events(self):
        with pytest.raises(ValueError):
            TransmitScheme(name="empty", events=())

    def test_events_and_schemes_are_comparable_and_hashable(self):
        # Regression: the generated dataclass __eq__/__hash__ raised on
        # the ndarray fields.
        a, b = TransmitEvent.focused(), TransmitEvent.focused(label="other")
        assert a == b          # labels are cosmetic
        assert hash(a) == hash(b)
        assert a != TransmitEvent.plane_wave(0.1)
        scheme_a = TransmitScheme(name="s", events=(a,))
        scheme_b = TransmitScheme(name="s", events=(b,))
        assert scheme_a == scheme_b and len({scheme_a, scheme_b}) == 1
        assert scheme_a != TransmitScheme(
            name="s", events=(TransmitEvent.plane_wave(0.1),))


class TestSchemeRegistry:
    def test_builtin_schemes_registered(self, tiny):
        assert set(SCHEMES.names()) >= {"focused", "planewave",
                                        "synthetic_aperture", "diverging"}
        for name in SCHEMES.names():
            scheme = SCHEMES.create(name, tiny)
            assert scheme.firing_count >= 1

    def test_focused_is_trivial_others_are_not(self, tiny):
        assert resolve_scheme(tiny, None).is_trivial()
        assert resolve_scheme(tiny, "focused").is_trivial()
        assert not resolve_scheme(tiny, "planewave").is_trivial()
        assert not resolve_scheme(
            tiny, "focused", {"origin": (0.0, 0.0, -0.01)}).is_trivial()

    def test_planewave_options_control_firing_count(self, tiny):
        assert resolve_scheme(tiny, "planewave",
                              {"n_angles": 3}).firing_count == 3

    def test_synthetic_aperture_stride(self, tiny):
        scheme = resolve_scheme(tiny, "synthetic_aperture", {"every": 16})
        assert scheme.firing_count == 4    # 64 elements / 16
        origins = np.stack([event.origin for event in scheme.events])
        assert not np.allclose(origins, origins[0])

    def test_prebuilt_scheme_passes_through(self, tiny):
        scheme = TransmitScheme(name="custom",
                                events=(TransmitEvent.focused(),))
        assert resolve_scheme(tiny, scheme) is scheme
        with pytest.raises(ValueError):
            resolve_scheme(tiny, scheme, options={"n_angles": 2})

    def test_unknown_scheme_lists_available(self, tiny):
        with pytest.raises(RegistryError, match="focused"):
            resolve_scheme(tiny, "nope")


class TestDelaySplit:
    def test_plan_keys_differ_per_event(self, tiny, grid):
        base = ARCHITECTURES.create("exact", tiny)
        events = resolve_scheme(tiny, "planewave", {"n_angles": 3}).events
        keys = set()
        for event in events:
            provider = TransmitAdjustedProvider.from_provider(
                base, event, tiny, grid=grid)
            keys.add(plan_key(DelayAndSumBeamformer(tiny, provider)))
        keys.add(plan_key(DelayAndSumBeamformer(tiny, base)))
        assert len(keys) == len(events) + 1

    def test_volume_matches_scanline_assembly(self, tiny, grid):
        base = ARCHITECTURES.create("tablefree", tiny)
        event = TransmitEvent.plane_wave(0.2)
        provider = TransmitAdjustedProvider.from_provider(base, event, tiny,
                                                          grid=grid)
        volume = provider.volume_delays_samples()
        np.testing.assert_allclose(volume[2, 3],
                                   provider.scanline_delays_samples(2, 3),
                                   rtol=0, atol=1e-9)
        nappe = provider.nappe_delays_samples(5)
        np.testing.assert_allclose(volume[:, :, 5], nappe, rtol=0,
                                   atol=1e-9)


class TestSimulateEvent:
    def test_focused_event_reproduces_simulate(self, simulator, phantom,
                                               tiny):
        legacy = simulator.simulate(phantom)
        event = resolve_scheme(tiny, "focused").events[0]
        np.testing.assert_array_equal(
            simulator.simulate_event(phantom, event).samples, legacy.samples)

    def test_broadside_plane_wave_matches_focused_on_axis(self, simulator,
                                                          phantom):
        # For an on-axis point the plane-wave projection equals the
        # spherical distance, so the echoes coincide — a useful sanity
        # check of both transmit models.
        legacy = simulator.simulate(phantom)
        planar = simulator.simulate_event(phantom,
                                          TransmitEvent.plane_wave(0.0))
        np.testing.assert_array_equal(planar.samples, legacy.samples)

    def test_steered_plane_wave_changes_echoes(self, simulator, phantom,
                                               tiny):
        legacy = simulator.simulate(phantom)
        event = TransmitEvent.plane_wave(0.5 * tiny.volume.theta_max)
        planar = simulator.simulate_event(phantom, event)
        assert not np.array_equal(planar.samples, legacy.samples)
        assert np.any(planar.samples != 0)


class TestSchemeEngine:
    def test_firing_count_is_enforced(self, tiny, simulator, phantom):
        scheme = resolve_scheme(tiny, "planewave", {"n_angles": 3})
        engine = SchemeEngine(
            DelayAndSumBeamformer(tiny, ARCHITECTURES.create("exact", tiny)),
            scheme)
        firings = acquire_firings(simulator, scheme, phantom)
        with pytest.raises(ValueError, match="3 firing"):
            engine.beamform_volume(firings[:2])
        with pytest.raises(ValueError, match="3 firing"):
            engine.beamform_batch([firings, firings[:1]])

    def test_per_firing_noise_decorrelated_from_frame_seeds(self, tiny,
                                                            simulator,
                                                            phantom):
        # Regression: per-firing seeds used to be seed + index, colliding
        # with the consecutive per-frame seeds the cine scenarios hand
        # out — two identical events isolate the noise realisation.
        scheme = TransmitScheme(name="twice",
                                events=(TransmitEvent.focused(),
                                        TransmitEvent.focused()))
        frame0 = acquire_firings(simulator, scheme, phantom,
                                 noise_std=0.1, seed=0)
        frame1 = acquire_firings(simulator, scheme, phantom,
                                 noise_std=0.1, seed=1)
        assert not np.array_equal(frame0[1].samples, frame1[0].samples)
        # Firing 0 still reproduces the legacy acquisition seed-for-seed.
        np.testing.assert_array_equal(
            frame0[0].samples,
            simulator.simulate(phantom, noise_std=0.1, seed=0).samples)

    def test_empty_batch_shape(self, tiny):
        scheme = resolve_scheme(tiny, "planewave", {"n_angles": 2})
        engine = SchemeEngine(
            DelayAndSumBeamformer(tiny, ARCHITECTURES.create("exact", tiny)),
            scheme)
        assert engine.beamform_batch([]).shape == (0, 8, 8, 16)


class TestScoring:
    def test_score_volume_always_reports_every_key(self, tiny):
        volume = np.zeros((8, 8, 16))
        volume[4, 4, 8] = 1.0
        scores = score_volume(tiny, volume, scenario="static_point")
        assert set(scores) == set(SCORE_KEYS)
        assert np.isfinite(scores["fwhm_axial"])
        assert np.isnan(scores["cnr"])

    def test_unknown_scenario_falls_back_to_point_scorer(self, tiny):
        volume = np.zeros((8, 8, 16))
        volume[4, 4, 8] = 1.0
        scores = score_volume(tiny, volume, scenario="does_not_exist")
        assert np.isfinite(scores["fwhm_axial"])

    def test_contrast_scorer_on_cyst_scenario(self, tiny):
        session = Session(EngineSpec(system="tiny"))
        frame = ScanSpec(scenario="cyst",
                         frames=1).build_frames(session.system)[0]
        volume = session.pipeline().image_scheme(frame.phantom).rf
        scores = score_volume(tiny, volume, scenario="cyst",
                              options=SCENARIOS.get("cyst")
                              .make_options(None))
        assert np.isfinite(scores["gcnr"]) and 0 <= scores["gcnr"] <= 1
        assert np.isfinite(scores["cnr"])


class TestScanScenarios:
    @pytest.mark.parametrize("scenario", ["cyst", "wire_grid", "multi_cyst",
                                          "moving_scatterers"])
    def test_new_scenarios_build_frames(self, tiny, scenario):
        frames = ScanSpec(scenario=scenario, frames=3).build_frames(tiny)
        assert len(frames) == 3
        assert all(frame.phantom is not None for frame in frames)

    def test_moving_scatterers_actually_move(self, tiny):
        frames = ScanSpec(scenario="moving_scatterers",
                          frames=3).build_frames(tiny)
        assert not np.allclose(frames[0].phantom.positions,
                               frames[2].phantom.positions)
        np.testing.assert_allclose(frames[0].phantom.amplitudes,
                                   frames[2].phantom.amplitudes)


class TestSpecThreading:
    def test_engine_spec_validates_scheme(self):
        with pytest.raises(RegistryError):
            EngineSpec(system="tiny", scheme="warp_drive")
        with pytest.raises(ValueError, match="registered scheme name"):
            EngineSpec(system="tiny",
                       scheme=TransmitScheme(
                           name="x", events=(TransmitEvent.focused(),)))

    def test_engine_spec_scheme_round_trip(self):
        spec = EngineSpec(system="tiny", scheme="synthetic_aperture",
                          scheme_options={"every": 16})
        rebuilt = EngineSpec.from_json(spec.to_json())
        assert rebuilt.scheme == "synthetic_aperture"
        assert rebuilt.scheme_options.every == 16

    def test_sweep_spec_round_trip_and_validation(self):
        spec = SweepSpec(scenarios=("cyst",), schemes=("planewave",),
                         architectures=("exact",), backends=None)
        rebuilt = SweepSpec.from_json(spec.to_json())
        assert rebuilt == spec
        with pytest.raises(RegistryError):
            SweepSpec(schemes=("nope",))
        with pytest.raises(ValueError):
            SweepSpec(scenarios=())
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"bogus": 1})

    def test_sweep_spec_rejects_bare_strings(self):
        # A hand-written {"scenarios": "cyst"} would otherwise iterate
        # character by character into "unknown scenario 'c'".
        with pytest.raises(ValueError, match="list of names"):
            SweepSpec(scenarios="cyst")
        with pytest.raises(ValueError, match="list of names"):
            SweepSpec(architectures="exact")

    def test_sweep_grid_reuses_plans_across_cells(self):
        # Regression: the grid used to reserve only one scheme's firing
        # count, evicting and recompiling plans on every scenario cell.
        session = Session(EngineSpec(system="tiny", backend="vectorized"))
        session.sweep(spec={"scenarios": ["static_point", "wire_grid"],
                            "schemes": ["planewave"],
                            "architectures": ["exact", "tablesteer"]})
        stats = session.cache.stats
        assert stats.evictions == 0
        assert stats.misses == 2 * 5      # architectures x firings, once
        assert stats.hits > 0             # second scenario reuses them all

    def test_spec_driven_sweep_rejects_per_call_arguments(self):
        session = Session(EngineSpec(system="tiny"))
        with pytest.raises(ValueError, match="SweepSpec document"):
            session.sweep(spec={"scenarios": ["static_point"]},
                          architectures=("exact",))
        with pytest.raises(ValueError, match="SweepSpec document"):
            session.sweep(spec={"scenarios": ["static_point"]},
                          noise_std=0.1)

    def test_session_scheme_override_uses_registered_defaults(self):
        session = Session(EngineSpec(system="tiny", scheme="planewave",
                                     scheme_options={"n_angles": 3}))
        assert session.scheme.firing_count == 3
        # Same name, no options -> inherit the spec's resolved scheme.
        assert session.pipeline().scheme is session.scheme
        # Different name -> that scheme's registered defaults.
        assert session.pipeline(scheme="diverging").scheme.firing_count == 4

    def test_session_cache_grows_to_firing_count(self):
        session = Session(EngineSpec(
            system="tiny", scheme="synthetic_aperture",
            scheme_options={"every": 8}, cache_capacity=4))
        assert session.scheme.firing_count == 8
        assert session.cache.capacity >= 8

    def test_scheme_options_only_override_applies_to_spec_scheme(self):
        # Regression: an options-only override used to be dropped
        # silently (returning the spec's 5-firing default).
        session = Session(EngineSpec(system="tiny", scheme="planewave"))
        pipeline = session.pipeline(scheme_options={"n_angles": 3})
        assert pipeline.scheme.firing_count == 3

    def test_per_call_scheme_override_reserves_cache_slots(self):
        # Regression: only the spec's scheme used to size the cache, so
        # an overridden multi-firing scheme thrashed its event bank.
        session = Session(EngineSpec(system="tiny", cache_capacity=4))
        assert session.cache.capacity == 4
        session.service(scheme="synthetic_aperture",
                        scheme_options={"every": 8})
        assert session.cache.capacity >= 8


class TestServiceScheme:
    def test_prerecorded_firings_stream(self, tiny, simulator, phantom):
        session = Session(EngineSpec(system="tiny", scheme="planewave",
                                     scheme_options={"n_angles": 2}))
        firings = session.acquire_firings(phantom)
        service = session.service()
        result = service.submit_frame(tuple(firings))
        np.testing.assert_array_equal(
            result.rf, session.pipeline(backend="vectorized")
            .compound_volume(firings).rf)
        assert service.stats().scheme == "planewave (2 firings)"

    def test_wrong_firing_count_rejected(self, phantom):
        session = Session(EngineSpec(system="tiny", scheme="planewave",
                                     scheme_options={"n_angles": 2}))
        firings = session.acquire_firings(phantom)
        with pytest.raises(ValueError, match="2 pre-recorded"):
            session.service().submit_frame(firings[0])

    def test_focused_service_keeps_legacy_stats(self, phantom):
        service = Session(EngineSpec(system="tiny")).service()
        service.submit_frame(phantom)
        assert service.stats().scheme is None

    def test_focused_service_accepts_single_firing_sequence(self, tiny,
                                                            simulator,
                                                            phantom):
        # A one-element firing tuple is a valid frame for the one-firing
        # baseline; scheme-generic callers need no special case.
        channel_data = simulator.simulate(phantom)
        service = Session(EngineSpec(system="tiny")).service(
            backend="vectorized")
        result = service.submit_frame((channel_data,))
        np.testing.assert_array_equal(
            result.rf, service.submit_frame(channel_data).rf)
        with pytest.raises(ValueError, match="one firing per frame"):
            service.submit_frame((channel_data, channel_data))

    def test_direct_service_reserves_cache_for_firings(self, tiny, phantom):
        # Regression: a directly-constructed service with a multi-firing
        # scheme used to thrash its 4-slot private cache (5 plan keys),
        # recompiling the whole event bank every frame.
        from repro.runtime.service import BeamformingService
        service = BeamformingService(tiny, scheme="planewave")
        assert service.cache.capacity >= 5
        for _ in range(2):
            service.submit_frame(phantom)
        stats = service.stats().cache
        assert stats.misses == 5 and stats.evictions == 0
        assert stats.hits == 5


class TestCliScheme:
    def test_spec_command_emits_scheme(self, capsys):
        from repro.cli import main
        assert main(["spec", "--system", "tiny", "--scheme", "planewave",
                     "--set", "scheme_options.n_angles=3"]) == 0
        out = capsys.readouterr().out
        assert '"scheme": "planewave"' in out
        assert '"n_angles": 3' in out

    def test_stream_command_accepts_scheme(self, capsys):
        from repro.cli import main
        assert main(["stream", "--system", "tiny", "--scheme", "diverging",
                     "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "scheme=diverging (4 firings)" in out

    def test_unknown_scheme_fails_with_listing(self, capsys):
        from repro.cli import main
        assert main(["spec", "--system", "tiny",
                     "--scheme", "warp_drive"]) == 2
        assert "focused" in capsys.readouterr().err
