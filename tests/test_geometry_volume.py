"""Tests for repro.geometry.volume: the focal-point grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import paper_system
from repro.geometry.volume import FocalGrid


class TestGridConstruction:
    def test_shape_matches_config(self, tiny_grid, tiny):
        assert tiny_grid.shape == (tiny.volume.n_theta, tiny.volume.n_phi,
                                   tiny.volume.n_depth)

    def test_point_count(self, tiny_grid):
        n_theta, n_phi, n_depth = tiny_grid.shape
        assert tiny_grid.point_count == n_theta * n_phi * n_depth

    def test_paper_grid_dimensions(self):
        grid = FocalGrid.from_config(paper_system())
        assert grid.shape == (128, 128, 1000)

    def test_angles_symmetric_about_zero(self, small_grid):
        np.testing.assert_allclose(small_grid.thetas, -small_grid.thetas[::-1])
        np.testing.assert_allclose(small_grid.phis, -small_grid.phis[::-1])

    def test_angle_extremes_match_config(self, small_grid, small):
        assert small_grid.thetas[0] == pytest.approx(-small.volume.theta_max)
        assert small_grid.thetas[-1] == pytest.approx(small.volume.theta_max)
        assert small_grid.phis[-1] == pytest.approx(small.volume.phi_max)

    def test_depths_span_config_range(self, small_grid, small):
        assert small_grid.depths[0] == pytest.approx(small.volume.depth_min)
        assert small_grid.depths[-1] == pytest.approx(small.volume.depth_max)
        assert np.all(np.diff(small_grid.depths) > 0)


class TestPointAccessors:
    def test_single_point_matches_scanline(self, tiny_grid):
        point = tiny_grid.point(2, 3, 5)
        scanline = tiny_grid.scanline_points(2, 3)
        np.testing.assert_allclose(point, scanline[5])

    def test_scanline_points_shape(self, tiny_grid):
        scanline = tiny_grid.scanline_points(0, 0)
        assert scanline.shape == (tiny_grid.shape[2], 3)

    def test_scanline_radii_equal_depths(self, tiny_grid):
        scanline = tiny_grid.scanline_points(1, 6)
        np.testing.assert_allclose(np.linalg.norm(scanline, axis=1),
                                   tiny_grid.depths)

    def test_nappe_points_shape(self, tiny_grid):
        nappe = tiny_grid.nappe_points(3)
        n_theta, n_phi, _ = tiny_grid.shape
        assert nappe.shape == (n_theta, n_phi, 3)

    def test_nappe_points_constant_radius(self, tiny_grid):
        nappe = tiny_grid.nappe_points(7)
        radii = np.linalg.norm(nappe.reshape(-1, 3), axis=1)
        np.testing.assert_allclose(radii, tiny_grid.depths[7])

    def test_all_points_consistent_with_accessors(self, tiny_grid):
        all_points = tiny_grid.all_points()
        np.testing.assert_allclose(all_points[2, 3, 5], tiny_grid.point(2, 3, 5))
        np.testing.assert_allclose(all_points[:, :, 4], tiny_grid.nappe_points(4))
        np.testing.assert_allclose(all_points[1, 2, :],
                                   tiny_grid.scanline_points(1, 2))

    def test_broadside_scanline_lies_on_z_axis_for_odd_grid(self, tiny):
        # Build a grid with odd angular counts so theta = phi = 0 exists.
        system = tiny.with_volume(n_theta=5, n_phi=5)
        grid = FocalGrid.from_config(system)
        scanline = grid.scanline_points(2, 2)
        np.testing.assert_allclose(scanline[:, 0], 0.0, atol=1e-12)
        np.testing.assert_allclose(scanline[:, 1], 0.0, atol=1e-12)


class TestSubsample:
    def test_subsample_shape(self, small_grid):
        sub = small_grid.subsample(every_theta=2, every_phi=4, every_depth=8)
        assert sub.shape == (8, 4, 8)

    def test_subsample_preserves_values(self, small_grid):
        sub = small_grid.subsample(every_theta=2)
        np.testing.assert_allclose(sub.thetas, small_grid.thetas[::2])
        np.testing.assert_allclose(sub.depths, small_grid.depths)

    def test_subsample_identity(self, small_grid):
        sub = small_grid.subsample()
        assert sub.shape == small_grid.shape

    def test_subsample_point_count_consistent(self, small_grid):
        sub = small_grid.subsample(every_depth=4)
        assert sub.point_count == sub.shape[0] * sub.shape[1] * sub.shape[2]
