"""Tests for repro.kernels: ops, precision policy and compiled plans.

This is the layer every execution path funnels through, so the pins here
are the strongest in the suite: the compiled plan must reproduce the
classic per-scanline math bit-for-bit at float64, float32 must stay inside
the documented tolerance, and batched execution must be frame-for-frame
identical to per-frame execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.architectures import ARCHITECTURES
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.interpolation import InterpolationKind, fetch_samples
from repro.kernels import (
    TOLERANCES,
    BeamformingPlan,
    Precision,
    accumulate,
    apply_weights,
    build_gather_index,
    compile_plan,
    delay_and_sum,
    gather_interp,
    plan_key,
    resolve_precision,
)


@pytest.fixture(scope="module")
def exact_beamformer(tiny):
    return DelayAndSumBeamformer(tiny, ARCHITECTURES.create("exact", tiny))


@pytest.fixture(scope="module")
def plan(exact_beamformer):
    return compile_plan(exact_beamformer)


class TestPrecision:
    def test_resolve_accepts_many_spellings(self):
        assert resolve_precision(None) is Precision.FLOAT64
        assert resolve_precision("float32") is Precision.FLOAT32
        assert resolve_precision(Precision.FLOAT32) is Precision.FLOAT32
        assert resolve_precision(np.float32) is Precision.FLOAT32
        assert resolve_precision(np.dtype("float64")) is Precision.FLOAT64

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="float32"):
            resolve_precision("float16")
        with pytest.raises(ValueError, match="precision"):
            resolve_precision(42)

    def test_dtype_and_tolerance_table(self):
        assert Precision.FLOAT64.dtype == np.float64
        assert Precision.FLOAT32.dtype == np.float32
        assert TOLERANCES[Precision.FLOAT64].atol <= 1e-9
        assert Precision.FLOAT32.tolerance.rtol > 0

    def test_tolerance_scales_atol_by_peak(self):
        reference = np.array([0.0, 100.0])
        # 100x the peak-relative atol on a peak-100 signal: passes.
        ok = reference + np.array([1e-3, 0.0])
        Precision.FLOAT32.tolerance.assert_allclose(ok, reference)
        with pytest.raises(AssertionError):
            bad = reference + np.array([1.0, 0.0])
            Precision.FLOAT32.tolerance.assert_allclose(bad, reference)


class TestGatherIndex:
    def test_nearest_matches_legacy_fetch(self, tiny_channel_data, rng):
        delays = rng.uniform(-5, tiny_channel_data.sample_count + 5,
                             size=(30, tiny_channel_data.element_count))
        index = build_gather_index(delays, tiny_channel_data.sample_count,
                                   InterpolationKind.NEAREST)
        gathered = gather_interp(tiny_channel_data.samples, index)
        legacy = fetch_samples(
            tiny_channel_data,
            np.broadcast_to(np.arange(delays.shape[1]), delays.shape),
            delays, kind=InterpolationKind.NEAREST)
        np.testing.assert_array_equal(gathered, legacy)

    def test_linear_matches_legacy_fetch(self, tiny_channel_data, rng):
        delays = rng.uniform(-5, tiny_channel_data.sample_count + 5,
                             size=(30, tiny_channel_data.element_count))
        index = build_gather_index(delays, tiny_channel_data.sample_count,
                                   InterpolationKind.LINEAR)
        gathered = gather_interp(tiny_channel_data.samples, index)
        legacy = fetch_samples(
            tiny_channel_data,
            np.broadcast_to(np.arange(delays.shape[1]), delays.shape),
            delays, kind=InterpolationKind.LINEAR)
        np.testing.assert_array_equal(gathered, legacy)

    def test_out_of_range_rows_are_zero(self, tiny_channel_data):
        n_elements = tiny_channel_data.element_count
        delays = np.full((4, n_elements), -100.0)
        delays[2:] = tiny_channel_data.sample_count + 100.0
        for kind in InterpolationKind:
            index = build_gather_index(delays,
                                       tiny_channel_data.sample_count, kind)
            gathered = gather_interp(tiny_channel_data.samples, index)
            np.testing.assert_array_equal(gathered, 0.0)

    def test_rows_view_matches_full(self, tiny_channel_data, rng):
        delays = rng.uniform(0, tiny_channel_data.sample_count,
                             size=(40, tiny_channel_data.element_count))
        index = build_gather_index(delays, tiny_channel_data.sample_count)
        block = index.rows(slice(10, 25))
        assert block.n_points == 15
        np.testing.assert_array_equal(
            gather_interp(tiny_channel_data.samples, block),
            gather_interp(tiny_channel_data.samples, index)[10:25])

    def test_bad_inputs_rejected(self, tiny_channel_data):
        with pytest.raises(ValueError, match="n_points, n_elements"):
            build_gather_index(np.zeros(5), 100)
        with pytest.raises(ValueError, match="interpolation"):
            build_gather_index(np.zeros((2, 2)), 100, kind="cubic")
        index = build_gather_index(
            np.zeros((2, tiny_channel_data.element_count)),
            tiny_channel_data.sample_count + 1)
        with pytest.raises(ValueError, match="sample"):
            gather_interp(tiny_channel_data.samples, index)
        with pytest.raises(ValueError, match="samples must be"):
            gather_interp(np.zeros(7), index)


class TestKernelComposition:
    def test_delay_and_sum_matches_manual_composition(self, tiny_channel_data,
                                                      rng):
        n_elements = tiny_channel_data.element_count
        delays = rng.uniform(0, tiny_channel_data.sample_count,
                             size=(25, n_elements))
        weights = rng.uniform(0.0, 1.0, size=(25, n_elements))
        manual = accumulate(apply_weights(
            gather_interp(tiny_channel_data.samples,
                          build_gather_index(
                              delays, tiny_channel_data.sample_count)),
            weights))
        np.testing.assert_array_equal(
            delay_and_sum(tiny_channel_data.samples, delays, weights), manual)

    def test_apply_weights_keeps_sample_dtype(self, rng):
        samples = rng.normal(size=(3, 4)).astype(np.float32)
        weights = rng.uniform(size=(3, 4))   # float64 weights
        assert apply_weights(samples, weights).dtype == np.float32

    def test_accumulate_sums_element_axis(self, rng):
        weighted = rng.normal(size=(2, 5, 3))
        np.testing.assert_array_equal(accumulate(weighted),
                                      weighted.sum(axis=-1))


class TestPlanCompile:
    def test_plan_shapes_and_metadata(self, tiny, exact_beamformer, plan):
        n_points = tiny.volume.focal_point_count
        n_elements = tiny.transducer.element_count
        assert plan.delays.shape == (n_points, n_elements)
        assert plan.weights.shape == (n_points, n_elements)
        assert plan.grid_shape == exact_beamformer.grid.shape
        assert plan.n_points == n_points and plan.n_elements == n_elements
        assert plan.precision is Precision.FLOAT64
        assert plan.dtype == np.float64
        assert plan.n_samples == tiny.echo_buffer_samples
        assert plan.nbytes > plan.delays.nbytes + plan.weights.nbytes

    def test_compile_precompiles_gather_index(self, plan):
        assert plan.gather_index() is plan.gather_index(plan.n_samples)

    def test_foreign_buffer_length_memoised(self, plan):
        other = plan.gather_index(plan.n_samples + 7)
        assert other.n_samples == plan.n_samples + 7
        assert plan.gather_index(plan.n_samples + 7) is other

    def test_float32_plan_casts_weights_only(self, exact_beamformer):
        plan32 = compile_plan(exact_beamformer, "float32")
        assert plan32.weights.dtype == np.float32
        assert plan32.delays.dtype == np.float64   # addressing stays exact

    def test_key_includes_interpolation_and_dtype(self, tiny,
                                                  exact_beamformer):
        linear = DelayAndSumBeamformer(
            tiny, exact_beamformer.delays,
            interpolation=InterpolationKind.LINEAR)
        keys = {plan_key(exact_beamformer),
                plan_key(exact_beamformer, "float32"),
                plan_key(linear),
                plan_key(linear, Precision.FLOAT32)}
        assert len(keys) == 4
        assert compile_plan(exact_beamformer).key == \
            plan_key(exact_beamformer)

    def test_key_includes_quantization_spec(self, tiny, exact_beamformer):
        from repro.kernels import QuantizationSpec
        quantized = DelayAndSumBeamformer(tiny, exact_beamformer.delays,
                                          quantization=18)
        assert plan_key(exact_beamformer) != plan_key(quantized)
        # Explicit spec argument overrides/augments the beamformer's own.
        assert plan_key(exact_beamformer,
                        quantization=QuantizationSpec.from_total_bits(18)) \
            == plan_key(quantized)
        assert compile_plan(quantized).key == plan_key(quantized)


class TestPlanExecution:
    def test_execute_matches_scanline_loop_exactly(self, exact_beamformer,
                                                   plan, tiny_channel_data):
        volume = plan.execute(tiny_channel_data)
        n_theta, n_phi, _ = plan.grid_shape
        for i_theta in range(0, n_theta, 3):
            for i_phi in range(0, n_phi, 3):
                np.testing.assert_array_equal(
                    volume[i_theta, i_phi],
                    exact_beamformer.beamform_scanline(tiny_channel_data,
                                                       i_theta, i_phi))

    def test_execute_accepts_raw_arrays(self, plan, tiny_channel_data):
        np.testing.assert_array_equal(plan.execute(tiny_channel_data.samples),
                                      plan.execute(tiny_channel_data))

    def test_execute_rows_tile_the_volume(self, plan, tiny_channel_data):
        full = plan.execute(tiny_channel_data).ravel()
        parts = [plan.execute_rows(tiny_channel_data, slice(lo, lo + 37))
                 for lo in range(0, plan.n_points, 37)]
        np.testing.assert_array_equal(np.concatenate(parts), full)

    def test_execute_batch_matches_per_frame(self, tiny, plan,
                                             tiny_channel_data):
        from repro.acoustics.echo import EchoSimulator
        from repro.acoustics.phantom import point_target
        simulator = EchoSimulator.from_config(tiny)
        frames = [tiny_channel_data,
                  simulator.simulate(point_target(depth=0.04), seed=5)]
        batch = plan.execute_batch(frames)
        assert batch.shape == (2, *plan.grid_shape)
        for i, frame in enumerate(frames):
            np.testing.assert_array_equal(batch[i], plan.execute(frame))

    def test_execute_batch_empty(self, plan):
        assert plan.execute_batch([]).shape == (0, *plan.grid_shape)

    def test_float32_execution_within_tolerance(self, exact_beamformer,
                                                plan, tiny_channel_data):
        plan32 = compile_plan(exact_beamformer, Precision.FLOAT32)
        reference = plan.execute(tiny_channel_data)
        fast = plan32.execute(tiny_channel_data)
        assert fast.dtype == np.float32
        Precision.FLOAT32.tolerance.assert_allclose(fast, reference)
        batch = plan32.execute_batch([tiny_channel_data])
        np.testing.assert_array_equal(batch[0], fast)

    def test_plans_are_shareable_artifacts(self, plan):
        assert isinstance(plan, BeamformingPlan)
        with pytest.raises(AttributeError):
            plan.precision = Precision.FLOAT32   # frozen
