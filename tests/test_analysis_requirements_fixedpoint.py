"""Tests for repro.analysis.requirements and repro.analysis.fixedpoint_impact."""

from __future__ import annotations

import pytest

from repro.analysis.fixedpoint_impact import (
    fixed_point_impact,
    fixed_point_sweep,
    impact_for_system,
)
from repro.analysis.requirements import requirements_report
from repro.config import paper_system, small_system


class TestRequirementsReport:
    def test_paper_headline_numbers(self):
        report = requirements_report(paper_system())
        assert report.naive_coefficients == pytest.approx(1.64e11, rel=0.01)
        assert report.required_delay_rate_per_second == pytest.approx(2.46e12,
                                                                      rel=0.01)
        assert report.symmetric_table_entries == 2_500_000
        assert report.symmetric_table_megabits_18b == pytest.approx(45.0)
        assert report.correction_values == 832_000
        assert report.correction_megabits_18b == pytest.approx(15.0, abs=0.1)

    def test_naive_storage_and_bandwidth_absurd(self):
        report = requirements_report(paper_system())
        assert report.naive_storage_gigabytes > 100
        assert report.naive_bandwidth_terabytes_per_second > 1

    def test_small_system_proportionally_smaller(self):
        small = requirements_report(small_system())
        paper = requirements_report(paper_system())
        assert small.naive_coefficients < paper.naive_coefficients
        assert small.symmetric_table_entries < paper.symmetric_table_entries

    def test_as_dict_contains_system_name(self):
        d = requirements_report(small_system()).as_dict()
        assert d["system"] == "small"

    def test_bits_per_coefficient_scales_storage(self):
        narrow = requirements_report(paper_system(), bits_per_coefficient=13)
        wide = requirements_report(paper_system(), bits_per_coefficient=26)
        assert wide.naive_storage_gigabytes == pytest.approx(
            2 * narrow.naive_storage_gigabytes)


class TestFixedPointImpact:
    def test_13_bit_affects_about_a_third(self):
        """Paper: ~33 % of echo samples shift by one with integer delays."""
        result = fixed_point_impact(13, n_samples=200_000, seed=1)
        assert result.affected_fraction == pytest.approx(0.33, abs=0.04)
        assert result.max_index_error == 1

    def test_18_bit_affects_under_three_percent(self):
        """Paper: < 2 % affected with the 18-bit (13.5) representation."""
        result = fixed_point_impact(18, n_samples=200_000, seed=1)
        assert result.affected_fraction < 0.03
        assert result.max_index_error <= 1

    def test_monotone_improvement_beyond_14_bits(self):
        sweep = fixed_point_sweep(bit_widths=(14, 16, 18, 20),
                                  n_samples=100_000, seed=2)
        fractions = [entry.affected_fraction for entry in sweep]
        assert fractions == sorted(fractions, reverse=True)

    def test_determinism(self):
        a = fixed_point_impact(18, n_samples=50_000, seed=42)
        b = fixed_point_impact(18, n_samples=50_000, seed=42)
        assert a.affected_fraction == b.affected_fraction

    def test_mean_error_below_affected_fraction(self):
        result = fixed_point_impact(13, n_samples=100_000, seed=3)
        # Errors are at most 1, so the mean |error| equals the affected
        # fraction when all errors are +/-1.
        assert result.mean_abs_index_error <= result.affected_fraction + 1e-12

    def test_impact_for_system_uses_its_ranges(self):
        result = impact_for_system(paper_system(), 18, n_samples=50_000)
        assert result.total_bits == 18
        assert 0.0 <= result.affected_fraction < 0.05

    def test_as_dict(self):
        d = fixed_point_impact(14, n_samples=10_000).as_dict()
        assert d["total_bits"] == 14.0
        assert 0.0 <= d["affected_fraction"] <= 1.0
