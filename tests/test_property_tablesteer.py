"""Property-based tests (hypothesis) for the TABLESTEER data structures."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_system
from repro.core.exact import ExactDelayEngine
from repro.core.reference_table import ReferenceDelayTable
from repro.core.steering import SteeringCorrections, correction_plane
from repro.core.tablesteer import TableSteerConfig, TableSteerDelayGenerator

SYSTEM = tiny_system()
EXACT = ExactDelayEngine.from_config(SYSTEM)
REFERENCE = ReferenceDelayTable.build(SYSTEM)
CORRECTIONS = SteeringCorrections.build(SYSTEM)
STEER_FLOAT = TableSteerDelayGenerator.from_config(
    SYSTEM, TableSteerConfig(total_bits=None))
STEER_18B = TableSteerDelayGenerator.from_config(
    SYSTEM, TableSteerConfig(total_bits=18))

grid_theta = st.integers(min_value=0, max_value=SYSTEM.volume.n_theta - 1)
grid_phi = st.integers(min_value=0, max_value=SYSTEM.volume.n_phi - 1)
grid_depth = st.integers(min_value=0, max_value=SYSTEM.volume.n_depth - 1)


class TestReferenceTableProperties:
    @given(i_depth=grid_depth)
    @settings(max_examples=60, deadline=None)
    def test_lookup_reconstruction_exact_for_any_depth(self, i_depth):
        np.testing.assert_allclose(REFERENCE.lookup(i_depth),
                                   REFERENCE.delays[:, :, i_depth])

    @given(i_depth=grid_depth)
    @settings(max_examples=60, deadline=None)
    def test_reference_slice_symmetric(self, i_depth):
        slice_ = REFERENCE.lookup(i_depth)
        np.testing.assert_allclose(slice_, slice_[::-1, :])
        np.testing.assert_allclose(slice_, slice_[:, ::-1])

    @given(i_depth=grid_depth)
    @settings(max_examples=60, deadline=None)
    def test_reference_minimum_at_aperture_centre(self, i_depth):
        """The on-axis reference delay is smallest for the innermost elements."""
        slice_ = REFERENCE.lookup(i_depth)
        ex, ey = slice_.shape
        centre = slice_[ex // 2 - 1: ex // 2 + 1, ey // 2 - 1: ey // 2 + 1].min()
        assert centre == slice_.min()


class TestSteeringProperties:
    @given(i_theta=grid_theta, i_phi=grid_phi)
    @settings(max_examples=100, deadline=None)
    def test_precomputed_plane_matches_direct_formula(self, i_theta, i_phi):
        theta = CORRECTIONS.grid.thetas[i_theta]
        phi = CORRECTIONS.grid.phis[i_phi]
        direct = correction_plane(CORRECTIONS.transducer.x,
                                  CORRECTIONS.transducer.y, theta, phi,
                                  SYSTEM.acoustic.speed_of_sound,
                                  SYSTEM.acoustic.sampling_frequency)
        np.testing.assert_allclose(CORRECTIONS.plane(i_theta, i_phi), direct,
                                   atol=1e-9)

    @given(i_theta=grid_theta, i_phi=grid_phi)
    @settings(max_examples=100, deadline=None)
    def test_plane_bounded_by_max_correction(self, i_theta, i_phi):
        plane = CORRECTIONS.plane(i_theta, i_phi)
        assert np.max(np.abs(plane)) <= CORRECTIONS.max_correction_samples() + 1e-9

    @given(i_theta=grid_theta, i_phi=grid_phi)
    @settings(max_examples=100, deadline=None)
    def test_plane_mean_is_zero(self, i_theta, i_phi):
        """The correction plane is linear in centred element coordinates, so
        its mean over the (symmetric) aperture vanishes."""
        plane = CORRECTIONS.plane(i_theta, i_phi)
        assert abs(float(np.mean(plane))) < 1e-9


class TestGeneratorProperties:
    @given(i_theta=grid_theta, i_phi=grid_phi, i_depth=grid_depth)
    @settings(max_examples=60, deadline=None)
    def test_float_generator_equals_reference_plus_plane(self, i_theta, i_phi,
                                                         i_depth):
        delays = STEER_FLOAT.grid_delay_samples(i_theta, i_phi, i_depth)
        expected = (REFERENCE.lookup(i_depth)
                    + CORRECTIONS.plane(i_theta, i_phi)).ravel()
        np.testing.assert_allclose(delays, expected, atol=1e-9)

    @given(i_theta=grid_theta, i_phi=grid_phi, i_depth=grid_depth)
    @settings(max_examples=40, deadline=None)
    def test_fixed_point_within_one_sample_of_float(self, i_theta, i_phi,
                                                    i_depth):
        float_idx = np.floor(
            STEER_FLOAT.grid_delay_samples(i_theta, i_phi, i_depth) + 0.5)
        fixed_idx = np.floor(
            STEER_18B.grid_delay_samples(i_theta, i_phi, i_depth) + 0.5)
        assert np.max(np.abs(fixed_idx - float_idx)) <= 1

    @given(i_theta=grid_theta, i_phi=grid_phi, i_depth=grid_depth)
    @settings(max_examples=40, deadline=None)
    def test_steering_error_bounded_by_lagrange_bound(self, i_theta, i_phi,
                                                      i_depth):
        from repro.core.tablesteer import lagrange_error_bound_seconds
        bound_samples = (lagrange_error_bound_seconds(SYSTEM)
                         * SYSTEM.acoustic.sampling_frequency)
        approx = STEER_FLOAT.grid_delay_samples(i_theta, i_phi, i_depth)
        truth = EXACT.delays_samples(
            EXACT.grid.point(i_theta, i_phi, i_depth).reshape(1, 3))[0]
        assert np.max(np.abs(approx - truth)) <= bound_samples * 1.05 + 1e-6

    @given(i_theta=grid_theta, i_phi=grid_phi)
    @settings(max_examples=30, deadline=None)
    def test_broadside_most_scanline_is_most_accurate(self, i_theta, i_phi):
        """No scanline has smaller mean steering error than the one closest
        to broadside (for this symmetric grid the innermost pair)."""
        def mean_error(it, ip):
            approx = STEER_FLOAT.scanline_delays_samples(it, ip)
            truth = EXACT.delays_samples(EXACT.grid.scanline_points(it, ip))
            return float(np.mean(np.abs(approx - truth)))
        centre = SYSTEM.volume.n_theta // 2
        centre_error = min(mean_error(centre, centre),
                           mean_error(centre - 1, centre - 1))
        assert mean_error(i_theta, i_phi) >= centre_error - 1e-9
