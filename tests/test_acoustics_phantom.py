"""Tests for repro.acoustics.phantom: scatterer collections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.phantom import (
    Phantom,
    cyst_phantom,
    multi_cyst_phantom,
    point_grid,
    point_target,
    speckle_phantom,
)
from repro.geometry.coordinates import cartesian_to_spherical


class TestPhantomBasics:
    def test_counts_must_match(self):
        with pytest.raises(ValueError):
            Phantom(positions=np.zeros((3, 3)), amplitudes=np.ones(2))

    def test_positions_must_be_3d(self):
        with pytest.raises(ValueError):
            Phantom(positions=np.zeros((3, 2)), amplitudes=np.ones(3))

    def test_scatterer_count(self):
        phantom = Phantom(positions=np.zeros((5, 3)), amplitudes=np.ones(5))
        assert phantom.scatterer_count == 5

    def test_single_scatterer_shapes_normalised(self):
        phantom = Phantom(positions=np.array([1.0, 2.0, 3.0]),
                          amplitudes=np.array(2.0))
        assert phantom.positions.shape == (1, 3)
        assert phantom.amplitudes.shape == (1,)

    def test_merged_with(self):
        a = point_target(depth=0.01)
        b = point_target(depth=0.02, amplitude=3.0)
        merged = a.merged_with(b, name="pair")
        assert merged.scatterer_count == 2
        assert merged.name == "pair"
        np.testing.assert_allclose(merged.amplitudes, [1.0, 3.0])


class TestPointTarget:
    def test_on_axis_position(self):
        phantom = point_target(depth=0.05)
        np.testing.assert_allclose(phantom.positions[0], [0, 0, 0.05], atol=1e-12)

    def test_steered_position_radius(self):
        phantom = point_target(depth=0.03, theta=0.3, phi=-0.2)
        assert np.linalg.norm(phantom.positions[0]) == pytest.approx(0.03)

    def test_amplitude(self):
        phantom = point_target(depth=0.05, amplitude=2.5)
        assert phantom.amplitudes[0] == 2.5


class TestPointGrid:
    def test_default_has_27_targets(self, small):
        phantom = point_grid(small)
        assert phantom.scatterer_count == 27

    def test_custom_axes(self, small):
        phantom = point_grid(small, depths=np.array([0.01, 0.02]),
                             thetas=np.array([0.0]), phis=np.array([0.0, 0.1, 0.2]))
        assert phantom.scatterer_count == 6

    def test_all_targets_inside_volume(self, small):
        phantom = point_grid(small)
        theta, phi, r = cartesian_to_spherical(phantom.positions)
        assert np.all(np.abs(theta) <= small.volume.theta_max + 1e-9)
        assert np.all(np.abs(phi) <= small.volume.phi_max + 1e-9)
        assert np.all(r <= small.volume.depth_max + 1e-9)
        assert np.all(r >= small.volume.depth_min - 1e-9)


class TestSpecklePhantom:
    def test_count_and_determinism(self, small):
        a = speckle_phantom(small, n_scatterers=500, seed=3)
        b = speckle_phantom(small, n_scatterers=500, seed=3)
        assert a.scatterer_count == 500
        np.testing.assert_allclose(a.positions, b.positions)
        np.testing.assert_allclose(a.amplitudes, b.amplitudes)

    def test_different_seed_differs(self, small):
        a = speckle_phantom(small, n_scatterers=100, seed=1)
        b = speckle_phantom(small, n_scatterers=100, seed=2)
        assert not np.allclose(a.positions, b.positions)

    def test_scatterers_inside_volume(self, small):
        phantom = speckle_phantom(small, n_scatterers=300, seed=4)
        theta, phi, r = cartesian_to_spherical(phantom.positions)
        assert np.all(np.abs(theta) <= small.volume.theta_max + 1e-9)
        assert np.all(r <= small.volume.depth_max + 1e-9)

    def test_amplitudes_zero_mean_ish(self, small):
        phantom = speckle_phantom(small, n_scatterers=5000, seed=5)
        assert abs(np.mean(phantom.amplitudes)) < 0.1


class TestCystPhantom:
    def test_cyst_region_is_empty(self, small):
        depth = small.volume.depth_min + 0.5 * small.volume.depth_span
        radius = 0.1 * small.volume.depth_span
        phantom = cyst_phantom(small, cyst_depth=depth, cyst_radius=radius,
                               n_scatterers=2000, seed=6)
        center = np.array([0.0, 0.0, depth])
        distances = np.linalg.norm(phantom.positions - center, axis=1)
        assert np.all(distances > radius)

    def test_cyst_removes_some_scatterers(self, small):
        background = speckle_phantom(small, n_scatterers=2000, seed=99)
        cyst = cyst_phantom(small, n_scatterers=2000, seed=99)
        assert cyst.scatterer_count < background.scatterer_count

    def test_default_parameters_work(self, small):
        phantom = cyst_phantom(small)
        assert phantom.scatterer_count > 0
        assert phantom.name == "cyst"


class TestFiniteValidation:
    """Regression: NaN/inf scatterers used to propagate silently into the
    echo simulator, poisoning every trace they touched; construction must
    reject them (which also covers merged_with and every factory)."""

    def test_nan_position_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Phantom(positions=np.array([[0.0, np.nan, 0.03]]),
                    amplitudes=np.array([1.0]))

    def test_inf_position_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Phantom(positions=np.array([[np.inf, 0.0, 0.03]]),
                    amplitudes=np.array([1.0]))

    def test_nan_amplitude_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Phantom(positions=np.array([[0.0, 0.0, 0.03]]),
                    amplitudes=np.array([np.nan]))

    def test_merged_with_cannot_introduce_nan(self):
        clean = point_target(depth=0.03)
        with pytest.raises(ValueError, match="finite"):
            clean.merged_with(Phantom(
                positions=np.array([[0.0, 0.0, np.nan]]),
                amplitudes=np.array([1.0])))

    def test_point_target_at_nan_depth_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            point_target(depth=float("nan"))

    def test_finite_phantoms_still_construct(self, small):
        assert speckle_phantom(small, n_scatterers=10).scatterer_count == 10


class TestMultiCystPhantom:
    def test_anechoic_region_is_silent(self, small):
        phantom = multi_cyst_phantom(small, contrasts=(0.0,),
                                     n_scatterers=2000, seed=3)
        volume = small.volume
        depth = volume.depth_min + 0.5 * volume.depth_span
        radius = 0.06 * volume.depth_span
        center = np.array([0.0, 0.0, depth])
        distance = np.linalg.norm(phantom.positions - center, axis=1)
        assert np.all(phantom.amplitudes[distance < radius] == 0.0)
        assert np.any(phantom.amplitudes[distance > radius] != 0.0)

    def test_regions_and_scoring_rings_never_overlap(self):
        # Regression: the original azimuthal spread put adjacent regions
        # closer than 2 radii on every shipped preset.
        from repro.acoustics.phantom import multi_cyst_layout
        for count in range(2, 7):
            fractions, radius = multi_cyst_layout(count)
            # Fractions are centrality-ordered (scored region first);
            # overlap is about the sorted spacing.
            spacing = float(np.min(np.diff(np.sort(fractions))))
            # Scoring ring outer edge (3r) stays short of the
            # neighbouring region's rim (spacing - r).
            assert 3 * radius < spacing - radius
            # The scored region sits at the most central position.
            assert abs(fractions[0] - 0.5) == \
                float(np.min(np.abs(fractions - 0.5)))

    def test_hyperechoic_region_is_amplified(self, small):
        base = speckle_phantom(small, n_scatterers=2000, seed=7)
        phantom = multi_cyst_phantom(small, contrasts=(4.0,),
                                     n_scatterers=2000, seed=7)
        changed = phantom.amplitudes != base.amplitudes
        assert changed.any()
        np.testing.assert_allclose(phantom.amplitudes[changed],
                                   4.0 * base.amplitudes[changed])

    def test_empty_contrasts_rejected(self, small):
        with pytest.raises(ValueError):
            multi_cyst_phantom(small, contrasts=())
