"""Tests for repro.fixedpoint.format: Q-format descriptions."""

from __future__ import annotations

import pytest

from repro.fixedpoint.format import (
    CORRECTION_18B,
    DELAY_INDEX_13B,
    QFormat,
    REFERENCE_DELAY_18B,
    signed,
    tablesteer_formats,
    unsigned,
)


class TestQFormatBasics:
    def test_unsigned_total_bits(self):
        assert unsigned(13, 5).total_bits == 18

    def test_signed_total_bits_includes_sign(self):
        assert signed(13, 4).total_bits == 18

    def test_resolution(self):
        assert unsigned(13, 5).resolution == pytest.approx(1 / 32)
        assert unsigned(13, 0).resolution == 1.0

    def test_unsigned_range(self):
        fmt = unsigned(3, 2)
        assert fmt.min_value == 0.0
        assert fmt.max_value == pytest.approx(8 - 0.25)
        assert fmt.min_raw == 0
        assert fmt.max_raw == 31

    def test_signed_range(self):
        fmt = signed(3, 2)
        assert fmt.min_value == -8.0
        assert fmt.max_value == pytest.approx(8 - 0.25)
        assert fmt.min_raw == -32
        assert fmt.max_raw == 31

    def test_describe(self):
        assert unsigned(13, 5).describe() == "U13.5 (18 bits)"
        assert signed(13, 4).describe() == "S13.4 (18 bits)"

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            QFormat(-1, 3)
        with pytest.raises(ValueError):
            QFormat(3, -1)
        with pytest.raises(ValueError):
            QFormat(0, 0)

    def test_zero_integer_bits_allowed(self):
        fmt = unsigned(0, 8)
        assert fmt.max_value < 1.0
        assert fmt.resolution == pytest.approx(1 / 256)


class TestPaperFormats:
    def test_reference_delay_format_is_u13_5(self):
        assert REFERENCE_DELAY_18B.integer_bits == 13
        assert REFERENCE_DELAY_18B.fraction_bits == 5
        assert not REFERENCE_DELAY_18B.signed
        assert REFERENCE_DELAY_18B.total_bits == 18

    def test_correction_format_is_s13_4(self):
        assert CORRECTION_18B.integer_bits == 13
        assert CORRECTION_18B.fraction_bits == 4
        assert CORRECTION_18B.signed
        assert CORRECTION_18B.total_bits == 18

    def test_reference_format_covers_echo_buffer(self):
        # The echo buffer holds slightly more than 8000 samples (13-bit index).
        assert REFERENCE_DELAY_18B.max_value > 8000

    def test_13_bit_index_format(self):
        assert DELAY_INDEX_13B.total_bits == 13
        assert DELAY_INDEX_13B.resolution == 1.0


class TestTableSteerFormats:
    def test_18_bit_formats(self):
        ref, corr = tablesteer_formats(18)
        assert (ref.integer_bits, ref.fraction_bits, ref.signed) == (13, 5, False)
        assert (corr.integer_bits, corr.fraction_bits, corr.signed) == (13, 4, True)

    def test_14_bit_formats(self):
        ref, corr = tablesteer_formats(14)
        assert ref.fraction_bits == 1
        assert corr.fraction_bits == 0
        assert corr.signed

    def test_13_bit_formats_are_integer(self):
        ref, corr = tablesteer_formats(13)
        assert ref.fraction_bits == 0
        assert corr.fraction_bits == 0

    def test_below_13_bits_rejected(self):
        with pytest.raises(ValueError):
            tablesteer_formats(12)

    @pytest.mark.parametrize("bits", [13, 14, 16, 18, 20, 24])
    def test_reference_total_width_matches_request(self, bits):
        ref, _corr = tablesteer_formats(bits)
        assert ref.total_bits == bits

    @pytest.mark.parametrize("bits", [14, 16, 18, 20])
    def test_more_bits_means_finer_resolution(self, bits):
        coarse, _ = tablesteer_formats(bits - 1)
        fine, _ = tablesteer_formats(bits)
        assert fine.resolution < coarse.resolution
