"""Tests for repro.core.tablesteer: table-plus-steering delay generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import sample_volume_points
from repro.core.tablesteer import (
    TableSteerConfig,
    TableSteerDelayGenerator,
    farfield_error_seconds,
    lagrange_error_bound_seconds,
    _nearest_index,
)
from repro.geometry.coordinates import spherical_to_cartesian


class TestNearestIndex:
    def test_exact_grid_values(self):
        grid = np.array([0.0, 1.0, 2.0, 3.0])
        np.testing.assert_array_equal(_nearest_index(grid, np.array([0.0, 2.0])),
                                      [0, 2])

    def test_between_values_rounds_to_nearest(self):
        grid = np.array([0.0, 1.0, 2.0])
        np.testing.assert_array_equal(
            _nearest_index(grid, np.array([0.4, 0.6, 1.49, 1.51])), [0, 1, 1, 2])

    def test_out_of_range_clamped(self):
        grid = np.array([0.0, 1.0, 2.0])
        np.testing.assert_array_equal(
            _nearest_index(grid, np.array([-5.0, 7.0])), [0, 2])


class TestConfig:
    def test_float_mode_flag(self):
        assert not TableSteerConfig(total_bits=None).is_fixed_point
        assert TableSteerConfig(total_bits=18).is_fixed_point

    def test_float_mode_has_no_formats(self):
        with pytest.raises(ValueError):
            TableSteerConfig(total_bits=None).formats()

    def test_formats_passthrough(self):
        ref, corr = TableSteerConfig(total_bits=18).formats()
        assert ref.total_bits == 18
        assert corr.signed


class TestBroadsideConsistency:
    def test_unsteered_scanline_matches_reference_table(self, tiny):
        """For theta = phi = 0 the steering plane is zero, so the generator
        must return exactly the reference-table values."""
        system = tiny.with_volume(n_theta=5, n_phi=5)
        generator = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=None))
        scanline = generator.scanline_delays_samples(2, 2)
        ex, ey = generator.transducer.shape
        for i_depth in (0, len(generator.grid.depths) - 1):
            expected = generator.reference.lookup(i_depth).ravel()
            np.testing.assert_allclose(scanline[i_depth], expected)

    def test_broadside_matches_exact_engine(self, tiny, tiny_exact):
        """On the unsteered line of sight the TABLESTEER float delays are the
        exact delays (no approximation at all is involved there)."""
        system = tiny.with_volume(n_theta=5, n_phi=5)
        generator = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=None))
        depths = generator.grid.depths
        points = np.stack([np.zeros_like(depths), np.zeros_like(depths), depths],
                          axis=-1)
        from repro.core.exact import ExactDelayEngine
        exact = ExactDelayEngine.from_config(system)
        np.testing.assert_allclose(generator.scanline_delays_samples(2, 2),
                                   exact.delays_samples(points), rtol=1e-12)


class TestSteeredAccuracy:
    def test_selection_error_small_within_directivity(self, small, small_exact,
                                                      small_tablesteer_float):
        from repro.analysis.accuracy import directivity_mask
        points = sample_volume_points(small, max_points=200, seed=8)
        error = (small_tablesteer_float.delay_indices(points)
                 - small_exact.delay_indices(points))
        mask = directivity_mask(small_exact, points)
        assert np.mean(np.abs(error[mask])) < 2.0

    def test_error_grows_with_steering_angle(self, small, small_exact,
                                             small_tablesteer_float):
        """The far-field approximation error increases off axis."""
        depths = small_exact.grid.depths[::8]
        centre_idx = len(small_exact.grid.thetas) // 2
        edge_idx = len(small_exact.grid.thetas) - 1
        def mean_error(i_theta):
            points = spherical_to_cartesian(
                np.full(len(depths), small_exact.grid.thetas[i_theta]),
                np.zeros(len(depths)), depths)
            return np.mean(np.abs(
                small_tablesteer_float.delays_samples(points)
                - small_exact.delays_samples(points)))
        assert mean_error(edge_idx) > mean_error(centre_idx)

    def test_error_decreases_with_depth(self, small, small_exact,
                                        small_tablesteer_float):
        """The far-field approximation improves as r grows."""
        i_theta = len(small_exact.grid.thetas) - 1
        i_phi = len(small_exact.grid.phis) - 1
        scanline_points = small_exact.grid.scanline_points(i_theta, i_phi)
        errors = np.abs(
            small_tablesteer_float.delays_samples(scanline_points)
            - small_exact.delays_samples(scanline_points)).mean(axis=1)
        shallow = errors[: len(errors) // 4].mean()
        deep = errors[-len(errors) // 4:].mean()
        assert deep < shallow

    def test_fixed_point_max_one_extra_sample(self, small):
        """Fixed point adds at most about one sample on top of the float mode
        (Section VI-A: the fixed-point index differs by at most +/-1)."""
        float_gen = TableSteerDelayGenerator.from_config(
            small, TableSteerConfig(total_bits=None))
        fixed_gen = TableSteerDelayGenerator.from_config(
            small, TableSteerConfig(total_bits=18))
        points = sample_volume_points(small, max_points=150, seed=9)
        float_idx = float_gen.delay_indices(points)
        fixed_idx = fixed_gen.delay_indices(points)
        assert np.max(np.abs(fixed_idx - float_idx)) <= 1


class TestInterfaces:
    def test_scanline_shape(self, tiny_tablesteer, tiny):
        delays = tiny_tablesteer.scanline_delays_samples(0, 0)
        assert delays.shape == (tiny.volume.n_depth,
                                tiny.transducer.element_count)

    def test_nappe_shape(self, tiny_tablesteer, tiny):
        delays = tiny_tablesteer.nappe_delays_samples(2)
        assert delays.shape == (tiny.volume.n_theta, tiny.volume.n_phi,
                                tiny.transducer.element_count)

    def test_nappe_scanline_consistency(self, tiny_tablesteer):
        nappe = tiny_tablesteer.nappe_delays_samples(5)
        scanline = tiny_tablesteer.scanline_delays_samples(4, 1)
        np.testing.assert_allclose(nappe[4, 1], scanline[5])

    def test_grid_delay_samples_single_point(self, tiny_tablesteer, tiny):
        delays = tiny_tablesteer.grid_delay_samples(1, 2, 3)
        assert delays.shape == (tiny.transducer.element_count,)
        scanline = tiny_tablesteer.scanline_delays_samples(1, 2)
        np.testing.assert_allclose(delays, scanline[3])

    def test_point_api_maps_to_nearest_grid_node(self, tiny_tablesteer):
        grid = tiny_tablesteer.grid
        point = grid.point(3, 4, 7).reshape(1, 3)
        from_points = tiny_tablesteer.delays_samples(point)[0]
        from_grid = tiny_tablesteer.grid_delay_samples(3, 4, 7)
        np.testing.assert_allclose(from_points, from_grid)

    def test_delay_indices_integer_nonnegative(self, tiny_tablesteer):
        points = tiny_tablesteer.grid.scanline_points(0, 0)[:4]
        indices = tiny_tablesteer.delay_indices(points)
        assert indices.dtype == np.int64
        assert np.all(indices >= 0)

    def test_storage_summary_keys(self, tiny_tablesteer):
        summary = tiny_tablesteer.storage_summary()
        assert set(summary) == {"reference_entries", "reference_megabits",
                                "correction_entries", "correction_megabits",
                                "total_megabits"}
        assert summary["total_megabits"] == pytest.approx(
            summary["reference_megabits"] + summary["correction_megabits"])

    def test_fixed_point_datapath_matches_delays(self, tiny_tablesteer):
        """The explicit FixedPointArray datapath rounds to the same indices
        as the quantised-float path used by delays_samples."""
        i_theta, i_phi, i_depth = 1, 3, 4
        datapath = tiny_tablesteer.fixed_point_datapath(i_theta, i_phi, i_depth)
        hw_indices = datapath.round_to_integer()
        float_path = tiny_tablesteer.grid_delay_samples(i_theta, i_phi, i_depth)
        expected = np.floor(float_path + 0.5).astype(np.int64)
        np.testing.assert_array_equal(hw_indices, expected)

    def test_float_mode_rejects_datapath_model(self, small_tablesteer_float):
        with pytest.raises(ValueError):
            small_tablesteer_float.fixed_point_datapath(0, 0, 0)


class TestErrorBounds:
    def test_farfield_error_zero_on_axis(self, tiny):
        error = farfield_error_seconds(
            0.0, 0.0, 0.02,
            np.linspace(-0.005, 0.005, 8), np.linspace(-0.005, 0.005, 8),
            tiny.acoustic.speed_of_sound)
        np.testing.assert_allclose(error, 0.0, atol=1e-15)

    def test_farfield_error_matches_generator_difference(self, small, small_exact,
                                                         small_tablesteer_float):
        """The closed-form error expression equals generator minus exact."""
        grid = small_exact.grid
        i_theta, i_phi, i_depth = len(grid.thetas) - 1, 0, len(grid.depths) // 2
        theta, phi, r = grid.thetas[i_theta], grid.phis[i_phi], grid.depths[i_depth]
        closed_form = farfield_error_seconds(
            theta, phi, r, small_exact.transducer.x, small_exact.transducer.y,
            small.acoustic.speed_of_sound)
        point = spherical_to_cartesian(theta, phi, r).reshape(1, 3)
        generator_diff = (
            small_tablesteer_float.delays_samples(point)
            - small_exact.delays_samples(point))[0] \
            / small.acoustic.sampling_frequency
        np.testing.assert_allclose(closed_form.ravel(), generator_diff,
                                   atol=1e-12)

    def test_lagrange_bound_exceeds_observed_errors(self, small, small_exact,
                                                    small_tablesteer_float):
        bound = lagrange_error_bound_seconds(small)
        points = sample_volume_points(small, max_points=200, seed=10)
        observed = np.max(np.abs(
            small_tablesteer_float.delays_samples(points)
            - small_exact.delays_samples(points))) \
            / small.acoustic.sampling_frequency
        assert bound >= observed * 0.9   # the bound is loose but not violated

    def test_lagrange_bound_positive(self, paper):
        assert lagrange_error_bound_seconds(paper) > 0
