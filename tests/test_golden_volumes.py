"""Golden regression fixtures: today's numerics, frozen bit-for-bit.

``tests/golden/tiny_tablesteer.npz`` holds small deterministic reference
volumes for one fully-specified engine (tiny preset, 18-bit TABLESTEER
delays, Hann + directivity apodization, nearest interpolation) under the
three kernel execution modes: ``float64``, ``float32`` and the bit-true
quantized datapath.  Every execution path — the classic per-scanline DAS
loop, the uncompiled kernels, and the three runtime backends — must keep
reproducing these arrays exactly; any numeric drift introduced by a
refactor of :mod:`repro.beamformer`, :mod:`repro.kernels` or
:mod:`repro.runtime` fails here first, with a diff a human has to look at.

After an *intentional* numeric change, regenerate with::

    pytest tests/test_golden_volumes.py --regen-golden

review the ``tests/golden/`` diff, and commit it with the change.

Determinism notes: the cine is noise-free (no RNG anywhere on the path),
and every kernel reduces with NumPy's pairwise summation over fixed
shapes, so the volumes are reproducible across runs and platforms for a
given NumPy; the suite and CI exercise the same environment matrix.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.architectures import ARCHITECTURES
from repro.beamformer.das import DelayAndSumBeamformer
from repro.geometry.volume import FocalGrid
from repro.kernels import QuantizationSpec
from repro.runtime import BACKENDS

GOLDEN_PATH = Path(__file__).parent / "golden" / "tiny_tablesteer.npz"

#: The three frozen execution modes: name -> (precision, quantization).
CONFIGS = {
    "float64": ("float64", None),
    "float32": ("float32", None),
    "quantized_18b": ("float64", QuantizationSpec.from_total_bits(18)),
}


@pytest.fixture(scope="module")
def engine(tiny):
    """The fully-specified deterministic engine the goldens were cut from."""
    provider = ARCHITECTURES.create("tablesteer", tiny,
                                    options={"total_bits": 18})
    grid = FocalGrid.from_config(tiny)
    depth = float(grid.depths[len(grid.depths) // 2])
    channel_data = EchoSimulator.from_config(tiny).simulate(
        point_target(depth=depth))
    return provider, channel_data


def _beamformer(tiny, provider, config):
    precision, quantization = CONFIGS[config]
    return DelayAndSumBeamformer(tiny, provider, precision=precision,
                                 quantization=quantization)


def _compute_volumes(tiny, engine):
    provider, channel_data = engine
    return {config: BACKENDS.create("vectorized",
                                    _beamformer(tiny, provider, config),
                                    None, CONFIGS[config][0])
            .beamform_volume(channel_data)
            for config in CONFIGS}


@pytest.fixture(scope="module")
def golden(request, tiny, engine):
    """The stored reference volumes (regenerated under ``--regen-golden``)."""
    if request.config.getoption("--regen-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        np.savez(GOLDEN_PATH, **_compute_volumes(tiny, engine))
    if not GOLDEN_PATH.exists():
        pytest.fail(f"missing golden fixture {GOLDEN_PATH}; run "
                    "'pytest tests/test_golden_volumes.py --regen-golden' "
                    "and commit the result")
    with np.load(GOLDEN_PATH) as stored:
        return {name: stored[name] for name in stored.files}


def test_golden_file_covers_every_config(golden):
    assert set(golden) == set(CONFIGS)
    for name, volume in golden.items():
        assert volume.shape == (8, 8, 16)
        assert volume.dtype == (np.float32 if name == "float32"
                                else np.float64)
        assert np.all(np.isfinite(volume))


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
def test_backends_reproduce_golden_bit_for_bit(tiny, engine, golden,
                                               backend, config):
    """No execution strategy may drift from the frozen volumes."""
    provider, channel_data = engine
    instance = BACKENDS.create(backend, _beamformer(tiny, provider, config),
                               None, CONFIGS[config][0])
    np.testing.assert_array_equal(instance.beamform_volume(channel_data),
                                  golden[config])


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_batched_execution_reproduces_golden(tiny, engine, golden, config):
    """The multi-frame gather path is pinned to the same bits."""
    provider, channel_data = engine
    instance = BACKENDS.create("vectorized",
                               _beamformer(tiny, provider, config),
                               None, CONFIGS[config][0])
    batch = instance.beamform_batch([channel_data, channel_data])
    np.testing.assert_array_equal(batch[0], golden[config])
    np.testing.assert_array_equal(batch[1], golden[config])


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_classic_scanline_das_reproduces_golden(tiny, engine, golden,
                                                config):
    """The per-scanline DAS loop (the layer under the backends) is pinned
    too, so a drift localises to DAS vs kernels vs backends."""
    provider, channel_data = engine
    beamformer = _beamformer(tiny, provider, config)
    for i_theta in (0, 3, 7):
        for i_phi in (1, 4):
            np.testing.assert_array_equal(
                beamformer.beamform_scanline(channel_data, i_theta, i_phi),
                golden[config][i_theta, i_phi])


def test_golden_modes_differ_from_each_other(golden):
    """The three stored modes are genuinely distinct datapaths (a stale
    regen copying one array into all three keys would pass equality
    everywhere else)."""
    assert not np.array_equal(golden["float64"],
                              golden["quantized_18b"])
    assert not np.array_equal(golden["float64"],
                              golden["float32"].astype(np.float64))
