"""Tests for repro.core.recursive: the recursive delay-calculation baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import ExactDelayEngine
from repro.core.recursive import RecursiveConfig, RecursiveDelayGenerator


@pytest.fixture(scope="module")
def generators(tiny):
    exact = ExactDelayEngine.from_config(tiny)
    recursive = RecursiveDelayGenerator.from_config(tiny)
    return tiny, exact, recursive


class TestScanlineRecursion:
    def test_first_depth_is_exact(self, generators):
        """With exact_start the first depth sample has no approximation error."""
        system, exact, recursive = generators
        approx = recursive.scanline_delays_samples(2, 3)
        truth = exact.delays_samples(exact.grid.scanline_points(2, 3))
        np.testing.assert_allclose(approx[0], truth[0], atol=1e-9)

    def test_shape(self, generators):
        system, _exact, recursive = generators
        delays = recursive.scanline_delays_samples(0, 0)
        assert delays.shape == (system.volume.n_depth,
                                system.transducer.element_count)

    def test_more_newton_iterations_reduce_error(self, tiny):
        exact = ExactDelayEngine.from_config(tiny)
        truth = exact.delays_samples(exact.grid.scanline_points(5, 5))
        errors = {}
        for iterations in (1, 3, 6):
            generator = RecursiveDelayGenerator.from_config(
                tiny, RecursiveConfig(newton_iterations=iterations))
            approx = generator.scanline_delays_samples(5, 5)
            errors[iterations] = np.max(np.abs(approx - truth))
        assert errors[3] <= errors[1]
        assert errors[6] <= errors[3]
        assert errors[6] < 0.1

    def test_converged_recursion_matches_exact(self, tiny):
        """With enough Newton steps the recursion reproduces the exact delays."""
        exact = ExactDelayEngine.from_config(tiny)
        generator = RecursiveDelayGenerator.from_config(
            tiny, RecursiveConfig(newton_iterations=10))
        approx = generator.scanline_delays_samples(1, 6)
        truth = exact.delays_samples(exact.grid.scanline_points(1, 6))
        assert np.max(np.abs(approx - truth)) < 1e-3

    def test_exact_start_disabled_degrades_shallow_accuracy(self, tiny):
        exact = ExactDelayEngine.from_config(tiny)
        truth = exact.delays_samples(exact.grid.scanline_points(0, 0))
        with_start = RecursiveDelayGenerator.from_config(
            tiny, RecursiveConfig(exact_start=True))
        without_start = RecursiveDelayGenerator.from_config(
            tiny, RecursiveConfig(exact_start=False))
        err_with = np.abs(with_start.scanline_delays_samples(0, 0)[0] - truth[0]).max()
        err_without = np.abs(
            without_start.scanline_delays_samples(0, 0)[0] - truth[0]).max()
        assert err_with <= err_without


class TestInterfaces:
    def test_nappe_matches_scanline(self, generators):
        _system, _exact, recursive = generators
        nappe = recursive.nappe_delays_samples(4)
        scanline = recursive.scanline_delays_samples(2, 5)
        np.testing.assert_allclose(nappe[2, 5], scanline[4])

    def test_point_api_matches_grid_api(self, generators):
        _system, _exact, recursive = generators
        point = recursive.grid.point(3, 3, 7).reshape(1, 3)
        from_points = recursive.delays_samples(point)[0]
        from_scanline = recursive.scanline_delays_samples(3, 3)[7]
        np.testing.assert_allclose(from_points, from_scanline)

    def test_delay_indices_integer(self, generators):
        _system, _exact, recursive = generators
        points = recursive.grid.scanline_points(0, 0)[:3]
        indices = recursive.delay_indices(points)
        assert indices.dtype == np.int64
        assert np.all(indices >= 0)


class TestAnalysis:
    def test_error_accumulates_along_scanline_with_one_iteration(self, tiny):
        generator = RecursiveDelayGenerator.from_config(
            tiny, RecursiveConfig(newton_iterations=1))
        profile = generator.error_accumulation_along_scanline(7, 7)
        assert profile[0] < 1e-6                     # exact start
        assert profile[-1] >= profile[0]             # error does not vanish

    def test_error_profile_shrinks_with_iterations(self, tiny):
        generator = RecursiveDelayGenerator.from_config(tiny)
        one = generator.error_accumulation_along_scanline(7, 7,
                                                          newton_iterations=1)
        five = generator.error_accumulation_along_scanline(7, 7,
                                                           newton_iterations=5)
        assert np.mean(five) <= np.mean(one)

    def test_arithmetic_cost_includes_divider(self, generators):
        """The recursive unit needs a divider, which the TABLEFREE PWL
        datapath avoids — the key hardware-cost difference."""
        _system, _exact, recursive = generators
        cost = recursive.arithmetic_cost_per_point()
        assert cost["divisions"] >= 1.0
        assert cost["additions"] >= 3.0

    def test_tablefree_beats_recursive_at_equal_effort(self, tiny):
        """At the cited one-Newton-step design point, the PWL TABLEFREE
        datapath is more accurate than the recursive unit over a scanline."""
        from repro.core.tablefree import TableFreeDelayGenerator
        exact = ExactDelayEngine.from_config(tiny)
        points = exact.grid.scanline_points(6, 6)
        truth = exact.delays_samples(points)
        recursive = RecursiveDelayGenerator.from_config(
            tiny, RecursiveConfig(newton_iterations=1))
        tablefree = TableFreeDelayGenerator.from_config(tiny)
        recursive_error = np.mean(np.abs(
            recursive.scanline_delays_samples(6, 6) - truth))
        tablefree_error = np.mean(np.abs(
            tablefree.delays_samples(points) - truth))
        assert tablefree_error < recursive_error
