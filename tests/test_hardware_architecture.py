"""Tests for repro.hardware.architecture: the Fig. 4 block model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint.format import CORRECTION_18B, REFERENCE_DELAY_18B
from repro.hardware.architecture import (
    BlockArray,
    BlockGeometry,
    DelayComputeBlock,
    paper_block_array,
)


class TestBlockGeometry:
    def test_paper_adder_count(self):
        geometry = BlockGeometry()
        assert geometry.adder_count == 136
        assert geometry.rounding_adder_count == 128
        assert geometry.delays_per_cycle == 128

    def test_custom_geometry(self):
        geometry = BlockGeometry(nx=4, ny=4)
        assert geometry.adder_count == 4 + 16
        assert geometry.delays_per_cycle == 16

    def test_bram_bits(self):
        assert BlockGeometry(bram_words=1024, word_bits=18).bram_bits == 18_432


class TestDelayComputeBlock:
    def test_single_cycle_matches_direct_sum(self, rng):
        block = DelayComputeBlock(geometry=BlockGeometry())
        reference = 1234.5
        x_corr = rng.uniform(-50, 50, 8)
        y_corr = rng.uniform(-50, 50, 16)
        output = block.process_cycle(reference, x_corr, y_corr)
        expected = np.floor(reference + x_corr[:, None] + y_corr[None, :] + 0.5)
        np.testing.assert_array_equal(output, expected.astype(np.int64))
        assert output.shape == (8, 16)

    def test_wrong_correction_lengths_rejected(self):
        block = DelayComputeBlock(geometry=BlockGeometry())
        with pytest.raises(ValueError):
            block.process_cycle(10.0, np.zeros(7), np.zeros(16))
        with pytest.raises(ValueError):
            block.process_cycle(10.0, np.zeros(8), np.zeros(15))

    def test_quantised_block_matches_quantised_reference_path(self, rng):
        block = DelayComputeBlock(geometry=BlockGeometry(),
                                  reference_format=REFERENCE_DELAY_18B,
                                  correction_format=CORRECTION_18B)
        reference = float(rng.uniform(0, 8000))
        x_corr = rng.uniform(-100, 100, 8)
        y_corr = rng.uniform(-100, 100, 16)
        output = block.process_cycle(reference, x_corr, y_corr)
        from repro.fixedpoint.quantize import quantize
        ref_q = float(quantize(reference, REFERENCE_DELAY_18B))
        x_q = quantize(x_corr, CORRECTION_18B)
        y_q = quantize(y_corr, CORRECTION_18B)
        expected = np.floor(ref_q + x_q[:, None] + y_q[None, :] + 0.5)
        np.testing.assert_array_equal(output, expected.astype(np.int64))

    def test_process_sequence_shape_and_consistency(self, rng):
        geometry = BlockGeometry(nx=3, ny=5)
        block = DelayComputeBlock(geometry=geometry)
        references = rng.uniform(0, 1000, 12)
        x_corr = rng.uniform(-10, 10, 3)
        y_corr = rng.uniform(-10, 10, 5)
        stream = block.process_sequence(references, x_corr, y_corr)
        assert stream.shape == (12, 3, 5)
        np.testing.assert_array_equal(
            stream[4], block.process_cycle(references[4], x_corr, y_corr))


class TestBlockArray:
    def test_paper_array_totals(self):
        array = paper_block_array()
        assert array.n_blocks == 128
        assert array.total_adders == 128 * 136
        assert array.delays_per_cycle == 128 * 128
        assert array.total_bram_bits / 1e6 == pytest.approx(2.36, abs=0.05)

    def test_peak_rate_at_200mhz_is_3_3_tdelays(self):
        array = paper_block_array()
        assert array.peak_delay_rate(200e6) == pytest.approx(3.28e12, rel=0.01)

    def test_peak_rate_scales_with_clock(self):
        array = paper_block_array()
        assert array.peak_delay_rate(100e6) == pytest.approx(
            array.peak_delay_rate(200e6) / 2)
