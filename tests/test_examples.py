"""Smoke tests: every example script runs end to end and prints its report.

The examples are part of the public deliverable, so the suite executes each
one's ``main()`` (with stdout captured) to guarantee they keep working as the
library evolves.  The slower paper-scale sections already run on scaled-down
presets inside the examples themselves.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    # Registered so dataclasses defined in examples (whose postponed
    # annotations are resolved against sys.modules) process correctly.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(spec.name, None)
        raise
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "TABLEFREE" in output and "TABLESTEER" in output
        assert "selection error" in output

    def test_imaging_point_target(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["imaging_point_target.py"])
        _load_example("imaging_point_target").main()
        output = capsys.readouterr().out
        assert "NRMS vs exact" in output
        assert "Point target" in output

    def test_imaging_point_target_off_axis(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["imaging_point_target.py", "--off-axis"])
        _load_example("imaging_point_target").main()
        assert "NRMS vs exact" in capsys.readouterr().out

    def test_fpga_feasibility(self, capsys):
        _load_example("fpga_feasibility").main()
        output = capsys.readouterr().out
        assert "Table II" in output
        assert "TABLESTEER-18b" in output
        assert "UltraScale" in output

    def test_accuracy_sweep(self, capsys):
        _load_example("accuracy_sweep").main()
        output = capsys.readouterr().out
        assert "delta" in output
        assert "affected" in output

    def test_synthetic_aperture(self, capsys):
        _load_example("synthetic_aperture").main()
        output = capsys.readouterr().out
        assert "virtual sources" in output
        assert "TABLESTEER tables" in output

    def test_streaming_runtime(self, capsys):
        _load_example("streaming_runtime").main()
        output = capsys.readouterr().out
        for backend in ("reference", "vectorized", "sharded"):
            assert backend in output
        assert "cache 7 hits / 1 misses" in output
        assert "backends agree on every peak : True" in output

    def test_design_space(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setattr(sys, "argv", ["design_space.py", str(tmp_path)])
        _load_example("design_space").main()
        output = capsys.readouterr().out
        assert "volumes/s" in output
        assert (tmp_path / "tablesteer_small_18b.npz").exists()


class TestExampleInventory:
    def test_at_least_three_examples_exist(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3

    def test_every_example_has_module_docstring_and_main(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            module = _load_example(path.stem)
            assert module.__doc__, path.name
            assert hasattr(module, "main"), path.name

    def test_custom_architecture(self, capsys):
        from repro.api import ARCHITECTURES
        try:
            _load_example("custom_architecture").main()
        finally:
            if "exact_offset" in ARCHITECTURES:
                ARCHITECTURES.unregister("exact_offset")
        output = capsys.readouterr().out
        assert '"architecture": "exact_offset"' in output
        assert "Peak depth index" in output
        assert "backend 'vectorized'" in output
