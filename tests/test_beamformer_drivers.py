"""Tests for repro.beamformer.drivers: scanline vs nappe volume reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.drivers import (
    reconstruct_nappe_order,
    reconstruct_plane,
    reconstruct_scanline_order,
)


@pytest.fixture(scope="module")
def beamformer_and_data():
    from repro.config import tiny_system
    from repro.core.exact import ExactDelayEngine
    from repro.acoustics.echo import EchoSimulator
    from repro.acoustics.phantom import point_target
    system = tiny_system()
    exact = ExactDelayEngine.from_config(system)
    depth = float(exact.grid.depths[len(exact.grid.depths) // 2])
    data = EchoSimulator.from_config(system).simulate(point_target(depth=depth))
    return system, DelayAndSumBeamformer(system, exact), data


class TestVolumeReconstruction:
    def test_scanline_volume_shape(self, beamformer_and_data):
        system, beamformer, data = beamformer_and_data
        volume = reconstruct_scanline_order(beamformer, data)
        assert volume.shape == (system.volume.n_theta, system.volume.n_phi,
                                system.volume.n_depth)
        assert volume.order == "scanline"

    def test_nappe_volume_shape(self, beamformer_and_data):
        system, beamformer, data = beamformer_and_data
        volume = reconstruct_nappe_order(beamformer, data)
        assert volume.shape == (system.volume.n_theta, system.volume.n_phi,
                                system.volume.n_depth)
        assert volume.order == "nappe"

    def test_both_orders_produce_identical_volumes(self, beamformer_and_data):
        """Algorithm 1's central claim: the two loop nests are equivalent."""
        _system, beamformer, data = beamformer_and_data
        scanline = reconstruct_scanline_order(beamformer, data)
        nappe = reconstruct_nappe_order(beamformer, data)
        np.testing.assert_allclose(scanline.rf, nappe.rf)

    def test_volume_contains_target_energy(self, beamformer_and_data):
        _system, beamformer, data = beamformer_and_data
        volume = reconstruct_scanline_order(beamformer, data)
        assert np.max(np.abs(volume.rf)) > 0


class TestPlaneReconstruction:
    def test_plane_shape(self, beamformer_and_data):
        system, beamformer, data = beamformer_and_data
        plane = reconstruct_plane(beamformer, data)
        assert plane.shape == (system.volume.n_theta, system.volume.n_depth)

    def test_plane_matches_volume_slice(self, beamformer_and_data):
        system, beamformer, data = beamformer_and_data
        i_phi = 3
        plane = reconstruct_plane(beamformer, data, i_phi=i_phi)
        volume = reconstruct_scanline_order(beamformer, data)
        np.testing.assert_allclose(plane, volume.rf[:, i_phi, :])

    def test_default_plane_is_centre_elevation(self, beamformer_and_data):
        system, beamformer, data = beamformer_and_data
        default = reconstruct_plane(beamformer, data)
        explicit = reconstruct_plane(beamformer, data,
                                     i_phi=system.volume.n_phi // 2)
        np.testing.assert_allclose(default, explicit)
