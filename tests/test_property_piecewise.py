"""Property-based tests (hypothesis) for the PWL square root and geometry."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.piecewise import IncrementalSqrtEvaluator, PiecewiseSqrt, minimax_linear_sqrt
from repro.geometry.coordinates import cartesian_to_spherical, spherical_to_cartesian


class TestMinimaxProperties:
    @given(a=st.floats(min_value=0, max_value=1e6, allow_nan=False),
           width=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_error_bound_holds_for_random_intervals(self, a, width):
        b = a + width
        c1, c0, max_error = minimax_linear_sqrt(a, b)
        xs = np.linspace(a, b, 257)
        errors = c1 * xs + c0 - np.sqrt(xs)
        assert np.max(np.abs(errors)) <= max_error * (1 + 1e-6) + 1e-12

    @given(a=st.floats(min_value=0, max_value=1e5, allow_nan=False),
           width=st.floats(min_value=1e-3, max_value=1e5, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_error_shrinks_when_interval_shrinks(self, a, width):
        b = a + width
        mid = a + width / 2
        _c1, _c0, full_error = minimax_linear_sqrt(a, b)
        _c1, _c0, half_error = minimax_linear_sqrt(a, mid)
        assert half_error <= full_error + 1e-12


class TestPiecewiseProperties:
    @given(x_max=st.floats(min_value=100.0, max_value=1e7, allow_nan=False),
           delta=st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_built_segmentation_respects_delta_everywhere(self, x_max, delta):
        pwl = PiecewiseSqrt.build(0.0, x_max, delta)
        rng = np.random.default_rng(0)
        xs = rng.uniform(0.0, x_max, 2000)
        assert np.max(np.abs(pwl.evaluate(xs) - np.sqrt(xs))) <= delta * (1 + 1e-6)

    @given(x_max=st.floats(min_value=100.0, max_value=1e6, allow_nan=False),
           delta=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_incremental_evaluator_always_matches_direct(self, x_max, delta, seed):
        """Regardless of the visiting order, the incremental tracker lands on
        the same segment (and hence value) as the binary-search evaluation."""
        pwl = PiecewiseSqrt.build(0.0, x_max, delta)
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0.0, x_max, 200)
        evaluator = IncrementalSqrtEvaluator(pwl=pwl)
        np.testing.assert_allclose(evaluator.evaluate_sequence(xs),
                                   pwl.evaluate(xs))

    @given(x_max=st.floats(min_value=1000.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_breakpoints_strictly_increasing(self, x_max):
        pwl = PiecewiseSqrt.build(0.0, x_max, 0.25)
        assert np.all(np.diff(pwl.breakpoints) > 0)

    @given(x_max=st.floats(min_value=1000.0, max_value=1e6, allow_nan=False),
           delta_small=st.floats(min_value=0.05, max_value=0.2, allow_nan=False),
           delta_large=st.floats(min_value=0.3, max_value=1.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_tighter_delta_never_needs_fewer_segments(self, x_max, delta_small,
                                                      delta_large):
        fine = PiecewiseSqrt.build(0.0, x_max, delta_small)
        coarse = PiecewiseSqrt.build(0.0, x_max, delta_large)
        assert fine.segment_count >= coarse.segment_count


class TestCoordinateProperties:
    @given(theta=st.floats(min_value=-1.4, max_value=1.4, allow_nan=False),
           phi=st.floats(min_value=-1.4, max_value=1.4, allow_nan=False),
           r=st.floats(min_value=1e-4, max_value=10.0, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_spherical_roundtrip(self, theta, phi, r):
        point = spherical_to_cartesian(theta, phi, r)
        theta_back, phi_back, r_back = cartesian_to_spherical(point)
        assert abs(float(r_back) - r) <= 1e-9 * max(1.0, r)
        assert abs(float(theta_back) - theta) <= 1e-7
        assert abs(float(phi_back) - phi) <= 1e-7

    @given(theta=st.floats(min_value=-1.4, max_value=1.4, allow_nan=False),
           phi=st.floats(min_value=-1.4, max_value=1.4, allow_nan=False),
           r=st.floats(min_value=1e-4, max_value=10.0, allow_nan=False))
    @settings(max_examples=300, deadline=None)
    def test_radius_preserved(self, theta, phi, r):
        point = spherical_to_cartesian(theta, phi, r)
        assert abs(float(np.linalg.norm(point)) - r) <= 1e-9 * max(1.0, r)

    @given(theta=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
           r=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_zero_phi_keeps_y_zero(self, theta, r):
        point = spherical_to_cartesian(theta, 0.0, r)
        assert abs(float(point[..., 1])) <= 1e-12
