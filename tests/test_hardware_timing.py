"""Tests for repro.hardware.timing: throughput and frame-rate models."""

from __future__ import annotations

import pytest

from repro.config import paper_system, small_system
from repro.hardware.timing import (
    delays_per_volume,
    frames_per_second_per_mhz,
    required_delay_rate,
    tablefree_throughput,
    tablesteer_dram_bandwidth,
    tablesteer_throughput,
)


class TestRequiredRates:
    def test_paper_required_rate(self):
        assert required_delay_rate(paper_system()) == pytest.approx(2.46e12,
                                                                    rel=0.01)

    def test_delays_per_volume(self):
        assert delays_per_volume(paper_system()) == pytest.approx(1.64e11,
                                                                  rel=0.01)

    def test_rate_scales_with_frame_rate(self):
        base = paper_system()
        doubled = base.with_beamformer(frame_rate=30.0)
        assert required_delay_rate(doubled) == pytest.approx(
            2 * required_delay_rate(base))


class TestTableFreeThroughput:
    def test_paper_frame_rate_at_167mhz(self):
        report = tablefree_throughput(paper_system(), n_units=10_000,
                                      clock_hz=167e6)
        assert report.achievable_frame_rate == pytest.approx(7.8, abs=0.4)

    def test_one_fps_per_20mhz_rule(self):
        fps_per_mhz = frames_per_second_per_mhz(paper_system())
        assert 20 * fps_per_mhz == pytest.approx(1.0, abs=0.1)

    def test_delay_rate_scales_with_units(self):
        small_array = tablefree_throughput(paper_system(), n_units=1764,
                                           clock_hz=167e6)
        full_array = tablefree_throughput(paper_system(), n_units=10_000,
                                          clock_hz=167e6)
        assert full_array.delay_rate == pytest.approx(
            small_array.delay_rate * 10_000 / 1764)

    def test_frame_rate_independent_of_unit_count(self):
        a = tablefree_throughput(paper_system(), n_units=100, clock_hz=167e6)
        b = tablefree_throughput(paper_system(), n_units=10_000, clock_hz=167e6)
        assert a.achievable_frame_rate == pytest.approx(b.achievable_frame_rate)

    def test_does_not_meet_15fps_target_at_167mhz(self):
        report = tablefree_throughput(paper_system(), n_units=10_000,
                                      clock_hz=167e6)
        assert not report.meets_target

    def test_meets_target_at_higher_clock(self):
        report = tablefree_throughput(paper_system(), n_units=10_000,
                                      clock_hz=330e6)
        assert report.meets_target


class TestTableSteerThroughput:
    def test_paper_peak_rate(self):
        report = tablesteer_throughput(paper_system(), n_blocks=128,
                                       delays_per_block_per_cycle=128,
                                       clock_hz=200e6)
        assert report.delay_rate == pytest.approx(3.28e12, rel=0.01)

    def test_paper_frame_rate_close_to_20fps(self):
        report = tablesteer_throughput(paper_system(), n_blocks=128,
                                       delays_per_block_per_cycle=128,
                                       clock_hz=200e6)
        assert report.achievable_frame_rate == pytest.approx(20.0, abs=0.5)
        assert report.meets_target

    def test_headroom_above_one(self):
        report = tablesteer_throughput(paper_system(), n_blocks=128,
                                       delays_per_block_per_cycle=128,
                                       clock_hz=200e6)
        assert report.headroom > 1.0

    def test_fewer_blocks_lower_rate(self):
        full = tablesteer_throughput(paper_system(), 128, 128, 200e6)
        half = tablesteer_throughput(paper_system(), 64, 128, 200e6)
        assert half.delay_rate == pytest.approx(full.delay_rate / 2)
        assert not half.meets_target


class TestDramBandwidth:
    def test_paper_18bit_bandwidth(self):
        bandwidth = tablesteer_dram_bandwidth(paper_system(),
                                              table_entries=2_500_000,
                                              entry_bits=18)
        assert bandwidth / 1e9 == pytest.approx(5.4, abs=0.2)

    def test_paper_14bit_bandwidth(self):
        bandwidth = tablesteer_dram_bandwidth(paper_system(),
                                              table_entries=2_500_000,
                                              entry_bits=14)
        assert bandwidth / 1e9 == pytest.approx(4.2, abs=0.2)

    def test_scales_with_frame_rate(self):
        base = tablesteer_dram_bandwidth(paper_system(), 2_500_000, 18)
        doubled = tablesteer_dram_bandwidth(paper_system(), 2_500_000, 18,
                                            target_frame_rate=30.0)
        assert doubled == pytest.approx(2 * base)

    def test_small_system_needs_less(self):
        small_bw = tablesteer_dram_bandwidth(small_system(), 100_000, 18)
        paper_bw = tablesteer_dram_bandwidth(paper_system(), 2_500_000, 18)
        assert small_bw < paper_bw
