"""Multiprocessing start-method pinning and cross-process frame transport.

``repro.runtime.mp`` is the one place the repo chooses a multiprocessing
start method (``spawn`` — the only method that is safe with threads and
behaves identically across platforms).  These tests pin the choice, pin
the "one place" rule with a source scan, and prove the shared-memory ring
actually carries frames bit-identically across a spawned process
boundary.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.mp import START_METHOD, spawn_context
from repro.server.ring import SharedFrameRing, fill_slot_from_seed, seeded_frame

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def test_start_method_is_spawn():
    assert START_METHOD == "spawn"
    assert spawn_context().get_start_method() == "spawn"


def test_spawn_context_is_fresh_each_call():
    # get_context returns the interpreter's singleton context per method;
    # the accessor must not cache anything of its own.
    assert spawn_context() is spawn_context()


def test_no_stray_multiprocessing_usage_in_src():
    """Only repro.runtime.mp may choose a start method or spawn processes.

    Everything else must go through :func:`repro.runtime.mp.spawn_context`
    (process creation) or use ``multiprocessing.shared_memory`` (which is
    start-method agnostic).  A stray ``get_context``/``set_start_method``
    or direct ``multiprocessing.Process`` elsewhere silently reintroduces
    platform-dependent fork semantics.
    """
    stray_patterns = re.compile(
        r"multiprocessing\.Process\(|set_start_method\(|get_context\(")
    offenders = []
    for path in SRC_ROOT.rglob("*.py"):
        if path.name == "mp.py" and path.parent.name == "runtime":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if stray_patterns.search(line):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "multiprocessing usage outside repro/runtime/mp.py:\n"
        + "\n".join(offenders))


def test_ring_round_trips_bits_across_spawned_process():
    """A frame written by a spawned producer reads back bit-identical."""
    shape, seed = (4, 64), 20150309
    ring = SharedFrameRing(shape, slots=2)
    try:
        lease = ring.acquire()
        process = spawn_context().Process(
            target=fill_slot_from_seed,
            args=(ring.descriptor(), lease.index, seed))
        process.start()
        process.join(timeout=60)
        assert process.exitcode == 0
        expected = seeded_frame(shape, np.float64, seed)
        np.testing.assert_array_equal(lease.array, expected)
        lease.release()
    finally:
        ring.close()


def test_attached_ring_cannot_lease():
    ring = SharedFrameRing((2, 8), slots=1)
    try:
        attached = SharedFrameRing.attach(ring.descriptor())
        try:
            with pytest.raises(RuntimeError, match="attached"):
                attached.acquire()
        finally:
            attached.close()
        # The creator's segment survives an attached close.
        ring.view(0)[:] = 1.0
        assert float(ring.view(0)[0, 0]) == 1.0
    finally:
        ring.close()
