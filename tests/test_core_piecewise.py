"""Tests for repro.core.piecewise: PWL sqrt approximation and segment tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.piecewise import (
    IncrementalSqrtEvaluator,
    PiecewiseSqrt,
    minimax_linear_sqrt,
)
from repro.fixedpoint.format import signed, unsigned


class TestMinimaxLinear:
    def test_error_bound_holds_on_interval(self):
        a, b = 100.0, 400.0
        c1, c0, max_error = minimax_linear_sqrt(a, b)
        xs = np.linspace(a, b, 2001)
        errors = c1 * xs + c0 - np.sqrt(xs)
        assert np.max(np.abs(errors)) <= max_error * (1 + 1e-9)

    def test_error_equioscillates(self):
        a, b = 50.0, 150.0
        c1, c0, max_error = minimax_linear_sqrt(a, b)
        xs = np.linspace(a, b, 4001)
        errors = c1 * xs + c0 - np.sqrt(xs)
        # Both extremes of the signed error are reached (within sampling).
        assert errors.max() == pytest.approx(max_error, rel=1e-3)
        assert errors.min() == pytest.approx(-max_error, rel=1e-3)

    def test_minimax_beats_chord(self):
        a, b = 10.0, 100.0
        _c1, _c0, minimax_error = minimax_linear_sqrt(a, b)
        # Chord error: interpolate sqrt at the endpoints.
        slope = (np.sqrt(b) - np.sqrt(a)) / (b - a)
        xs = np.linspace(a, b, 2001)
        chord_error = np.max(np.abs(np.sqrt(a) + slope * (xs - a) - np.sqrt(xs)))
        assert minimax_error <= chord_error / 2 * (1 + 1e-6)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            minimax_linear_sqrt(5.0, 5.0)
        with pytest.raises(ValueError):
            minimax_linear_sqrt(-1.0, 5.0)
        with pytest.raises(ValueError):
            minimax_linear_sqrt(10.0, 5.0)

    def test_interval_starting_at_zero(self):
        c1, c0, max_error = minimax_linear_sqrt(0.0, 4.0)
        xs = np.linspace(0, 4, 1001)
        errors = c1 * xs + c0 - np.sqrt(xs)
        assert np.max(np.abs(errors)) <= max_error * (1 + 1e-9)
        # Known closed form: error of the best fit on [0, h] is sqrt(h)/8.
        assert max_error == pytest.approx(np.sqrt(4.0) / 8.0, rel=1e-6)


class TestPiecewiseSqrtBuild:
    def test_error_bound_respected_everywhere(self):
        pwl = PiecewiseSqrt.build(0.0, 1e6, delta=0.25)
        assert pwl.max_error() <= 0.25 * (1 + 1e-6)

    def test_domain_covered(self):
        pwl = PiecewiseSqrt.build(10.0, 5000.0, delta=0.1)
        assert pwl.x_min == pytest.approx(10.0)
        assert pwl.x_max == pytest.approx(5000.0)
        assert np.all(np.diff(pwl.breakpoints) > 0)

    def test_smaller_delta_needs_more_segments(self):
        coarse = PiecewiseSqrt.build(0.0, 1e6, delta=0.5)
        fine = PiecewiseSqrt.build(0.0, 1e6, delta=0.125)
        assert fine.segment_count > coarse.segment_count

    def test_segment_count_scaling_with_quarter_root(self):
        """Segment count grows roughly like x_max**(1/4) for fixed delta."""
        small_range = PiecewiseSqrt.build(0.0, 1e4, delta=0.25)
        large_range = PiecewiseSqrt.build(0.0, 1.6e5, delta=0.25)
        ratio = large_range.segment_count / small_range.segment_count
        assert 1.5 < ratio < 2.7   # (16)**0.25 = 2

    def test_paper_range_needs_about_70_segments(self):
        """For the paper's argument range (~4800 max one-way samples) and
        delta = 0.25, the segmentation lands in the neighbourhood of the 70
        segments the paper reports."""
        max_samples = 4800.0
        pwl = PiecewiseSqrt.build(0.0, max_samples ** 2, delta=0.25)
        assert 55 <= pwl.segment_count <= 85

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseSqrt.build(0.0, 100.0, delta=0.0)
        with pytest.raises(ValueError):
            PiecewiseSqrt.build(100.0, 10.0, delta=0.1)
        with pytest.raises(ValueError):
            PiecewiseSqrt.build(-5.0, 10.0, delta=0.1)


class TestPiecewiseSqrtEvaluate:
    @pytest.fixture(scope="class")
    def pwl(self):
        return PiecewiseSqrt.build(0.0, 1e6, delta=0.25)

    def test_evaluate_close_to_sqrt(self, pwl, rng):
        xs = rng.uniform(0, 1e6, 5000)
        np.testing.assert_allclose(pwl.evaluate(xs), np.sqrt(xs), atol=0.2501)

    def test_error_method_consistent(self, pwl, rng):
        xs = rng.uniform(0, 1e6, 100)
        np.testing.assert_allclose(pwl.error(xs),
                                   pwl.evaluate(xs) - np.sqrt(xs))

    def test_segment_index_within_bounds(self, pwl, rng):
        xs = rng.uniform(-10, 2e6, 1000)   # includes out-of-domain values
        idx = pwl.segment_index(xs)
        assert idx.min() >= 0
        assert idx.max() <= pwl.segment_count - 1

    def test_evaluate_scalar_input(self, pwl):
        assert float(pwl.evaluate(2500.0)) == pytest.approx(50.0, abs=0.26)

    def test_breakpoint_membership(self, pwl):
        # A point just above a breakpoint belongs to the segment that starts there.
        for i in range(1, min(10, pwl.segment_count)):
            x = pwl.breakpoints[i] + 1e-9
            assert pwl.segment_index(x) == i


class TestQuantizedCoefficients:
    def test_quantized_keeps_structure(self):
        pwl = PiecewiseSqrt.build(0.0, 1e5, delta=0.25)
        quantized = pwl.quantized(signed(3, 26), unsigned(13, 8))
        assert quantized.segment_count == pwl.segment_count
        np.testing.assert_allclose(quantized.breakpoints, pwl.breakpoints)

    def test_quantized_error_stays_small(self, rng):
        pwl = PiecewiseSqrt.build(0.0, 2.5e7, delta=0.25)
        quantized = pwl.quantized(signed(3, 26), unsigned(13, 8))
        xs = rng.uniform(0, 2.5e7, 5000)
        errors = quantized.evaluate(xs) - np.sqrt(xs)
        # Coefficient quantisation adds at most a fraction of a sample.
        assert np.max(np.abs(errors)) < 0.5

    def test_lut_storage_accounting(self):
        pwl = PiecewiseSqrt.build(0.0, 1e5, delta=0.25)
        bits = pwl.lut_storage_bits(signed(3, 26), unsigned(13, 8))
        slope_bits = pwl.segment_count * signed(3, 26).total_bits
        intercept_bits = pwl.segment_count * unsigned(13, 8).total_bits
        breakpoint_bits = (pwl.segment_count + 1) * unsigned(13, 8).total_bits
        assert bits == slope_bits + intercept_bits + breakpoint_bits


class TestIncrementalEvaluator:
    @pytest.fixture(scope="class")
    def pwl(self):
        return PiecewiseSqrt.build(0.0, 1e6, delta=0.25)

    def test_matches_direct_evaluation(self, pwl, rng):
        evaluator = IncrementalSqrtEvaluator(pwl=pwl)
        xs = np.sort(rng.uniform(0, 1e6, 500))
        incremental = evaluator.evaluate_sequence(xs)
        np.testing.assert_allclose(incremental, pwl.evaluate(xs))

    def test_matches_direct_for_decreasing_sequence(self, pwl, rng):
        evaluator = IncrementalSqrtEvaluator(pwl=pwl,
                                             current_segment=pwl.segment_count - 1)
        xs = np.sort(rng.uniform(0, 1e6, 500))[::-1]
        incremental = evaluator.evaluate_sequence(xs)
        np.testing.assert_allclose(incremental, pwl.evaluate(xs))

    def test_gradual_sequence_needs_few_steps(self, pwl):
        xs = np.linspace(1000.0, 9e5, 20_000)
        evaluator = IncrementalSqrtEvaluator(
            pwl=pwl, current_segment=int(pwl.segment_index(xs[0])))
        evaluator.evaluate_sequence(xs)
        assert evaluator.mean_steps_per_evaluation < 0.1
        assert evaluator.max_steps_single_evaluation <= 1

    def test_jump_requires_many_steps_but_stays_correct(self, pwl):
        evaluator = IncrementalSqrtEvaluator(pwl=pwl)
        evaluator.evaluate(10.0)
        value = evaluator.evaluate(9.9e5)
        assert value == pytest.approx(np.sqrt(9.9e5), abs=0.26)
        assert evaluator.max_steps_single_evaluation > 1

    def test_reset_clears_counters(self, pwl):
        evaluator = IncrementalSqrtEvaluator(pwl=pwl)
        evaluator.evaluate_sequence(np.linspace(0, 1e6, 50))
        evaluator.reset()
        assert evaluator.total_steps == 0
        assert evaluator.total_evaluations == 0
        assert evaluator.current_segment == 0
        assert evaluator.mean_steps_per_evaluation == 0.0
