"""Tests for repro.analysis.ablation: design-choice ablation studies."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    correction_reuse_ablation,
    directivity_filtering_ablation,
    incremental_tracking_ablation,
    interpolation_ablation,
    symmetry_pruning_ablation,
)
from repro.config import paper_system


class TestDirectivityAblation:
    @pytest.fixture(scope="class")
    def result(self, small):
        return directivity_filtering_ablation(small, max_points=200)

    def test_filtering_does_not_increase_worst_error(self, result):
        assert result["with_filtering"]["max_abs"] <= \
            result["without_filtering"]["max_abs"]

    def test_reduction_factor_at_least_one(self, result):
        assert result["max_error_reduction_factor"] >= 1.0

    def test_some_pairs_masked(self, result):
        assert 0.0 < result["masked_fraction"] < 1.0


class TestSymmetryAblation:
    def test_pruning_is_lossless(self, tiny):
        result = symmetry_pruning_ablation(tiny)
        assert result["max_reconstruction_error_samples"] == 0.0

    def test_storage_saving_about_three_quarters(self, tiny):
        result = symmetry_pruning_ablation(tiny)
        assert result["storage_saving_fraction"] == pytest.approx(0.75, abs=0.05)

    def test_directivity_offers_additional_pruning(self, tiny):
        result = symmetry_pruning_ablation(tiny)
        assert 0.0 <= result["additional_directivity_prunable_fraction"] < 1.0


class TestTrackingAblation:
    @pytest.fixture(scope="class")
    def result(self, small):
        return incremental_tracking_ablation(small)

    def test_mean_steps_well_below_search_cost(self, result):
        """Incremental tracking needs far fewer steps than a log2(segments)
        binary search would."""
        assert result["scanline_mean_steps"] < \
            result["search_cost_avoided_steps_per_point"]
        assert result["nappe_mean_steps"] < \
            result["search_cost_avoided_steps_per_point"]

    def test_nappe_order_at_most_as_expensive_as_scanline(self, result):
        """Within a nappe the argument changes even less than along a
        scanline, so tracking is at least as cheap."""
        assert result["nappe_mean_steps"] <= result["scanline_mean_steps"] + 0.5

    def test_bounded_worst_case(self, result):
        assert result["scanline_max_steps"] <= 5
        assert result["nappe_max_steps"] <= 5


class TestInterpolationAblation:
    @pytest.fixture(scope="class")
    def result(self, tiny):
        return interpolation_ablation(tiny)

    def test_images_differ_but_modestly(self, result):
        assert 0.0 < result["nrms_nearest_vs_linear"] < 0.5

    def test_peak_amplitude_comparable(self, result):
        assert result["peak_ratio"] == pytest.approx(1.0, abs=0.2)

    def test_cost_model_attached(self, result):
        assert result["cost_linear"]["buffer_reads"] == \
            2 * result["cost_nearest"]["buffer_reads"]


class TestCorrectionReuseAblation:
    def test_paper_scale_reuse_factor(self):
        result = correction_reuse_ablation(paper_system())
        # 16.4e6 focal points vs 64 insonifications per frame.
        assert result["reload_reduction_factor"] == pytest.approx(
            128 * 128 * 1000 / 64)
        assert result["scanlines_per_insonification"] == 256

    def test_optimised_reload_count_equals_insonifications(self, small):
        result = correction_reuse_ablation(small)
        assert result["coefficient_reloads_per_frame_optimised"] == \
            small.beamformer.insonifications_per_volume
