"""Tests for repro.runtime.scheduler and repro.runtime.service.

Covers the streaming contract of the acceptance criteria: a >= 8-frame cine
sequence flows through every backend, per-frame latency and aggregate
throughput are recorded, and the cache statistics prove that repeated
frames of an unchanged probe geometry never regenerate delay tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.phantom import point_target
from repro.kernels import Precision
from repro.runtime import (
    BeamformingService,
    DelayTableCache,
    FrameRequest,
    FrameScheduler,
    PlanCache,
    moving_point_cine,
    static_cine,
)

N_FRAMES = 8


class TestFrameRequest:
    def test_requires_exactly_one_payload(self, tiny, tiny_channel_data):
        phantom = point_target(depth=0.01)
        with pytest.raises(ValueError):
            FrameRequest(frame_id=0)
        with pytest.raises(ValueError):
            FrameRequest(frame_id=0, phantom=phantom,
                         channel_data=tiny_channel_data)
        assert FrameRequest(frame_id=0, phantom=phantom).phantom is phantom


class TestFrameScheduler:
    def test_fifo_order_and_ids(self, tiny_channel_data):
        scheduler = FrameScheduler()
        for _ in range(5):
            scheduler.submit(channel_data=tiny_channel_data)
        assert scheduler.pending == len(scheduler) == 5
        drained = [request.frame_id for request in scheduler.drain()]
        assert drained == [0, 1, 2, 3, 4]
        assert scheduler.pending == 0

    def test_extend_with_cine(self, tiny):
        scheduler = FrameScheduler()
        scheduler.extend(moving_point_cine(tiny, n_frames=3))
        assert scheduler.pending == 3

    def test_submit_after_extend_does_not_reuse_ids(self, tiny,
                                                    tiny_channel_data):
        scheduler = FrameScheduler()
        scheduler.extend(moving_point_cine(tiny, n_frames=3))  # ids 0..2
        request = scheduler.submit(channel_data=tiny_channel_data)
        assert request.frame_id == 3
        ids = [r.frame_id for r in scheduler.drain()]
        assert ids == [0, 1, 2, 3]


class TestCineScenarios:
    def test_moving_point_cine_moves(self, tiny):
        frames = moving_point_cine(tiny, n_frames=N_FRAMES)
        assert len(frames) == N_FRAMES
        depths = [float(np.linalg.norm(f.phantom.positions)) for f in frames]
        assert depths == sorted(depths)
        assert depths[0] < depths[-1]

    def test_static_cine_replays_same_frame(self, tiny_channel_data):
        frames = static_cine(tiny_channel_data, n_frames=4)
        assert len(frames) == 4
        assert all(f.channel_data is tiny_channel_data for f in frames)

    def test_frame_counts_validated(self, tiny, tiny_channel_data):
        with pytest.raises(ValueError):
            moving_point_cine(tiny, n_frames=0)
        with pytest.raises(ValueError):
            static_cine(tiny_channel_data, n_frames=0)


class TestBeamformingService:
    @pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
    def test_streams_cine_through_backend(self, tiny, backend):
        service = BeamformingService(tiny, architecture="tablesteer",
                                     backend=backend)
        results = service.stream_all(moving_point_cine(tiny, n_frames=N_FRAMES))
        assert len(results) == N_FRAMES
        shape = (tiny.volume.n_theta, tiny.volume.n_phi, tiny.volume.n_depth)
        for i, result in enumerate(results):
            assert result.frame_id == i
            assert result.rf.shape == shape
            assert result.backend == backend
            assert result.latency_seconds > 0
            assert result.voxel_count == tiny.volume.focal_point_count
        # The target moves between frames, so the volumes must differ.
        assert not np.allclose(results[0].rf, results[-1].rf)

    def test_backends_agree_on_streamed_frames(self, tiny):
        cine = moving_point_cine(tiny, n_frames=N_FRAMES)
        volumes = {}
        for backend in ("reference", "vectorized", "sharded"):
            service = BeamformingService(tiny, backend=backend)
            volumes[backend] = service.stream_all(cine)
        for backend in ("vectorized", "sharded"):
            for got, want in zip(volumes[backend], volumes["reference"]):
                np.testing.assert_allclose(got.rf, want.rf, rtol=0, atol=1e-9)

    def test_cached_frames_skip_delay_regeneration(self, tiny):
        cache = DelayTableCache()
        service = BeamformingService(tiny, backend="vectorized", cache=cache)
        service.stream_all(moving_point_cine(tiny, n_frames=N_FRAMES))
        stats = service.stats()
        assert stats.cache.misses == 1
        assert stats.cache.hits == N_FRAMES - 1
        assert stats.cache.evictions == 0

    def test_stats_aggregate_counts(self, tiny, tiny_channel_data):
        service = BeamformingService(tiny, backend="vectorized")
        service.stream_all(static_cine(tiny_channel_data, n_frames=4))
        stats = service.stats()
        assert stats.frames == 4
        assert stats.voxels == 4 * tiny.volume.focal_point_count
        assert stats.acquire_seconds == 0.0
        assert stats.beamform_seconds > 0
        assert stats.frames_per_second > 0
        assert stats.voxels_per_second > 0
        assert stats.total_seconds == pytest.approx(
            stats.acquire_seconds + stats.beamform_seconds)
        assert stats.max_latency_seconds >= stats.mean_latency_seconds

    def test_submit_accepts_raw_payloads(self, tiny, tiny_channel_data):
        service = BeamformingService(tiny, backend="vectorized")
        from_data = service.submit_frame(tiny_channel_data)
        assert from_data.acquire_seconds == 0.0
        from_phantom = service.submit_frame(point_target(depth=0.01))
        assert from_phantom.acquire_seconds > 0
        assert service.stats().frames == 2

    def test_frame_ids_stay_monotonic_across_reset(self, tiny,
                                                   tiny_channel_data):
        service = BeamformingService(tiny, backend="vectorized")
        first = service.submit_frame(tiny_channel_data)
        second = service.submit_frame(tiny_channel_data)
        assert (first.frame_id, second.frame_id) == (0, 1)
        service.reset_stats()
        third = service.submit_frame(tiny_channel_data)
        assert third.frame_id == 2  # ids never repeat after a stats reset
        assert service.stats().frames == 1  # but the stats did reset

    def test_auto_ids_continue_above_explicit_requests(self, tiny,
                                                       tiny_channel_data):
        service = BeamformingService(tiny, backend="vectorized")
        service.submit_frame(FrameRequest(frame_id=7,
                                          channel_data=tiny_channel_data))
        auto = service.submit_frame(tiny_channel_data)
        assert auto.frame_id == 8

    def test_architecture_options_accepted(self, tiny, tiny_channel_data):
        from repro.core.tablesteer import TableSteerConfig
        service = BeamformingService(
            tiny, architecture="tablesteer",
            architecture_options=TableSteerConfig(total_bits=13))
        assert service.beamformer.delays.design.total_bits == 13
        as_dict = BeamformingService(
            tiny, architecture="tablesteer",
            architecture_options={"total_bits": 13})
        assert as_dict.beamformer.delays.design.total_bits == 13

    def test_reset_stats_keeps_cache(self, tiny, tiny_channel_data):
        cache = DelayTableCache()
        service = BeamformingService(tiny, backend="vectorized", cache=cache)
        service.submit_frame(tiny_channel_data)
        service.reset_stats()
        assert service.stats().frames == 0
        service.submit_frame(tiny_channel_data)
        assert cache.stats.misses == 1  # tables survived the reset
        assert cache.stats.hits == 1

    def test_backend_name_exposed(self, tiny):
        service = BeamformingService(tiny, backend="sharded")
        assert service.backend_name == "sharded"


class TestPrecisionPolicy:
    @pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
    def test_float32_stream_within_tolerance(self, tiny, backend):
        cine = moving_point_cine(tiny, n_frames=3)
        exact = BeamformingService(tiny, backend=backend).stream_all(cine)
        fast = BeamformingService(tiny, backend=backend,
                                  precision="float32").stream_all(cine)
        for got, want in zip(fast, exact):
            assert got.rf.dtype == np.float32
            Precision.FLOAT32.tolerance.assert_allclose(got.rf, want.rf)

    def test_stats_report_precision(self, tiny, tiny_channel_data):
        service = BeamformingService(tiny, precision="float32")
        service.submit_frame(tiny_channel_data)
        assert service.stats().precision == "float32"
        assert BeamformingService(tiny).stats().precision == "float64"

    def test_unknown_precision_rejected(self, tiny):
        with pytest.raises(ValueError, match="precision|float32"):
            BeamformingService(tiny, precision="float16")

    def test_precisions_never_share_plans(self, tiny, tiny_channel_data):
        cache = PlanCache()
        for precision in ("float64", "float32"):
            service = BeamformingService(tiny, backend="vectorized",
                                         cache=cache, precision=precision)
            service.submit_frame(tiny_channel_data)
            service.submit_frame(tiny_channel_data)
        assert cache.stats.misses == 2   # one compiled plan per precision
        assert cache.stats.hits == 2


class TestBatchedSubmission:
    def test_submit_batch_matches_per_frame(self, tiny):
        cine = moving_point_cine(tiny, n_frames=4)
        per_frame = BeamformingService(tiny, backend="vectorized")
        batched = BeamformingService(tiny, backend="vectorized")
        singles = per_frame.stream_all(cine)
        results = batched.submit_batch(cine)
        assert [r.frame_id for r in results] == [r.frame_id for r in singles]
        for got, want in zip(results, singles):
            np.testing.assert_array_equal(got.rf, want.rf)
        stats = batched.stats()
        assert stats.frames == 4
        assert stats.beamform_seconds > 0

    def test_stream_with_batch_size_preserves_order(self, tiny):
        cine = moving_point_cine(tiny, n_frames=5)
        service = BeamformingService(tiny, backend="vectorized")
        results = service.stream_all(cine, batch_size=2)  # 2 + 2 + 1 frames
        assert [r.frame_id for r in results] == [0, 1, 2, 3, 4]
        assert service.stats().frames == 5

    def test_batched_stream_matches_per_frame_volumes(self, tiny):
        cine = moving_point_cine(tiny, n_frames=4)
        per_frame = BeamformingService(tiny, backend="sharded")
        batched = BeamformingService(tiny, backend="sharded")
        singles = per_frame.stream_all(cine)
        results = batched.stream_all(cine, batch_size=4)
        for got, want in zip(results, singles):
            np.testing.assert_array_equal(got.rf, want.rf)

    def test_batch_accepts_raw_payloads(self, tiny, tiny_channel_data):
        service = BeamformingService(tiny, backend="vectorized")
        results = service.submit_batch(
            [tiny_channel_data, point_target(depth=0.01)])
        assert [r.frame_id for r in results] == [0, 1]
        assert results[0].acquire_seconds == 0.0
        assert results[1].acquire_seconds > 0

    def test_empty_batch_is_a_noop(self, tiny):
        service = BeamformingService(tiny, backend="vectorized")
        assert service.submit_batch([]) == []
        assert service.stats().frames == 0

    def test_bad_batch_size_rejected(self, tiny, tiny_channel_data):
        service = BeamformingService(tiny, backend="vectorized")
        with pytest.raises(ValueError, match="batch_size"):
            service.stream_all(static_cine(tiny_channel_data, 2),
                               batch_size=0)
