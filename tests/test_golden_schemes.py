"""Golden regression fixtures for scheme composition: compounded volumes.

``tests/golden/tiny_schemes.npz`` freezes two deterministic float64
compounded volumes for the tiny 18-bit TABLESTEER engine — a 3-angle
plane-wave compound and a 4-firing synthetic-aperture compound of the
same grid-snapped point target.  The transmit/receive delay split, the
per-firing echo simulation and the compounding sum all feed these bits,
so drift anywhere in the scheme composition chain (scenarios, acoustics,
kernels, backends) fails here loudly, separately from the single-firing
goldens in ``tests/test_golden_volumes.py``.

Regenerate after an *intentional* numeric change with::

    pytest tests/test_golden_schemes.py --regen-golden

review the ``tests/golden/`` diff and commit it with the change.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.api import EngineSpec, ScanSpec, Session

GOLDEN_PATH = Path(__file__).parent / "golden" / "tiny_schemes.npz"

#: The frozen schemes: name -> scheme options.
CONFIGS = {
    "planewave": {"n_angles": 3},
    "synthetic_aperture": {"every": 16},
}


def _session(scheme: str) -> Session:
    return Session(EngineSpec(system="tiny", architecture="tablesteer",
                              architecture_options={"total_bits": 18},
                              scheme=scheme,
                              scheme_options=CONFIGS[scheme]))


def _compute_volumes() -> dict[str, np.ndarray]:
    volumes = {}
    for scheme in CONFIGS:
        session = _session(scheme)
        frame = ScanSpec(scenario="static_point",
                         frames=1).build_frames(session.system)[0]
        firings = session.acquire_firings(frame.phantom)
        volumes[scheme] = session.pipeline(backend="vectorized") \
            .compound_volume(firings).rf
    return volumes


@pytest.fixture(scope="module")
def golden(request):
    """The stored compounded volumes (regenerated under ``--regen-golden``)."""
    if request.config.getoption("--regen-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        np.savez(GOLDEN_PATH, **_compute_volumes())
    if not GOLDEN_PATH.exists():
        pytest.fail(f"missing golden fixture {GOLDEN_PATH}; run "
                    "'pytest tests/test_golden_schemes.py --regen-golden' "
                    "and commit the result")
    with np.load(GOLDEN_PATH) as stored:
        return {name: stored[name] for name in stored.files}


def test_golden_file_covers_every_scheme(golden):
    assert set(golden) == set(CONFIGS)
    for volume in golden.values():
        assert volume.shape == (8, 8, 16)
        assert volume.dtype == np.float64
        assert np.all(np.isfinite(volume))
        assert np.max(np.abs(volume)) > 0


@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
@pytest.mark.parametrize("scheme", sorted(CONFIGS))
def test_backends_reproduce_compounded_golden(golden, scheme, backend):
    """No execution strategy may drift from the frozen compounded bits."""
    session = _session(scheme)
    frame = ScanSpec(scenario="static_point",
                     frames=1).build_frames(session.system)[0]
    firings = session.acquire_firings(frame.phantom)
    volume = session.pipeline(backend=backend).compound_volume(firings).rf
    np.testing.assert_array_equal(volume, golden[scheme])


def test_golden_schemes_differ_from_each_other_and_from_focused(golden, tiny):
    """The schemes are genuinely distinct acquisitions (a stale regen or a
    scheme silently collapsing to the focused path would alias them)."""
    assert not np.array_equal(golden["planewave"],
                              golden["synthetic_aperture"])
    session = Session(EngineSpec(system="tiny", architecture="tablesteer",
                                 architecture_options={"total_bits": 18}))
    frame = ScanSpec(scenario="static_point",
                     frames=1).build_frames(session.system)[0]
    focused = session.pipeline().image_scheme(frame.phantom).rf
    for volume in golden.values():
        assert not np.array_equal(volume, focused)
