"""Tests for repro.hardware.report: the Table II generator."""

from __future__ import annotations

import pytest

from repro.config import paper_system, small_system
from repro.hardware.device import virtex7_xc7vx1140t, virtex_ultrascale_projection
from repro.hardware.report import (
    format_table2,
    full_table_row,
    table2,
    tablefree_row,
    tablesteer_row,
)


@pytest.fixture(scope="module")
def rows():
    return table2(paper_system())


class TestTableFreeRow:
    def test_matches_paper_headline_numbers(self, rows):
        row = rows[0]
        assert row.name == "TABLEFREE"
        assert row.lut_utilization == pytest.approx(1.0, abs=0.03)
        assert row.register_utilization == pytest.approx(0.23, abs=0.03)
        assert row.bram_utilization == 0.0
        assert row.clock_hz == pytest.approx(167e6)
        assert row.offchip_bandwidth_bytes_per_second == 0.0
        assert row.delay_rate / 1e12 == pytest.approx(1.67, abs=0.05)
        assert row.frame_rate == pytest.approx(7.8, abs=0.5)
        assert row.supported_channels == (42, 42)

    def test_ultrascale_supports_larger_aperture(self):
        v7 = tablefree_row(paper_system(), device=virtex7_xc7vx1140t())
        us = tablefree_row(paper_system(), device=virtex_ultrascale_projection())
        assert us.supported_channels[0] > v7.supported_channels[0]

    def test_unnormalised_row_reports_oversubscription(self):
        row = tablefree_row(paper_system(), fit_to_device=False)
        assert row.notes["n_units_fitted"] == 10_000
        assert row.notes["luts_demanded"] > virtex7_xc7vx1140t().luts


class TestTableSteerRows:
    def test_14_bit_row(self, rows):
        row = rows[1]
        assert row.name == "TABLESTEER-14b"
        assert row.lut_utilization == pytest.approx(0.91, abs=0.03)
        assert row.register_utilization == pytest.approx(0.25, abs=0.03)
        assert row.bram_utilization == pytest.approx(0.25, abs=0.03)
        assert row.offchip_bandwidth_bytes_per_second / 1e9 == pytest.approx(
            4.2, abs=0.2)
        assert row.frame_rate == pytest.approx(20.0, abs=0.5)
        assert row.supported_channels == (100, 100)

    def test_18_bit_row(self, rows):
        row = rows[2]
        assert row.name == "TABLESTEER-18b"
        assert row.lut_utilization == pytest.approx(1.0, abs=0.03)
        assert row.register_utilization == pytest.approx(0.30, abs=0.03)
        assert row.bram_utilization == pytest.approx(0.25, abs=0.03)
        assert row.offchip_bandwidth_bytes_per_second / 1e9 == pytest.approx(
            5.4, abs=0.2)
        assert row.delay_rate / 1e12 == pytest.approx(3.3, abs=0.1)

    def test_reference_entry_counts_recorded(self, rows):
        notes = rows[2].notes
        assert notes["reference_table_entries"] == 2_500_000
        assert notes["correction_values"] == 832_000

    def test_small_system_fits_comfortably(self):
        row = tablesteer_row(small_system(), total_bits=18, n_blocks=16)
        assert row.lut_utilization < 0.5
        assert row.bram_utilization < 0.25


class TestTableAssembly:
    def test_three_rows(self, rows):
        assert [row.name for row in rows] == ["TABLEFREE", "TABLESTEER-14b",
                                              "TABLESTEER-18b"]

    def test_who_wins_shape(self, rows):
        """The qualitative conclusion of the paper: TABLESTEER fits the full
        100x100 aperture at ~20 fps on the Virtex-7, TABLEFREE does not reach
        the full aperture and runs below the 15 fps target."""
        tablefree, _steer14, steer18 = rows
        assert steer18.supported_channels == (100, 100)
        assert tablefree.supported_channels[0] < 100
        assert steer18.frame_rate > 15.0 > tablefree.frame_rate
        # TABLEFREE's compensating advantages: no BRAM, no DRAM traffic.
        assert tablefree.bram_utilization == 0.0
        assert tablefree.offchip_bandwidth_bytes_per_second == 0.0
        assert steer18.offchip_bandwidth_bytes_per_second > 0.0

    def test_as_dict_keys(self, rows):
        d = rows[0].as_dict()
        for key in ("architecture", "luts_pct", "registers_pct", "bram_pct",
                    "clock_mhz", "dram_gb_per_s", "throughput_tdelays_per_s",
                    "frame_rate_fps", "channels"):
            assert key in d

    def test_format_table2_contains_all_rows(self, rows):
        text = format_table2(rows)
        for row in rows:
            assert row.name in text
        assert "Frame rate" in text

    def test_full_table_row_strawman(self):
        strawman = full_table_row(paper_system())
        assert strawman["coefficients"] == pytest.approx(1.64e11, rel=0.01)
        assert strawman["storage_gigabytes"] > 100
        assert strawman["bandwidth_terabytes_per_second"] > 1
