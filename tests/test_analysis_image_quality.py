"""Tests for repro.analysis.image_quality: contrast and resolution studies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.image_quality import (
    cyst_contrast_study,
    delay_error_to_image_error,
    resolution_vs_depth_study,
)


class TestCystContrast:
    @pytest.fixture(scope="class")
    def study(self, tiny):
        return cyst_contrast_study(tiny, n_scatterers=500, seed=11)

    def test_all_architectures_reported(self, study):
        assert set(study) == {"exact", "tablefree", "tablesteer"}

    def test_cyst_is_darker_than_background(self, study):
        """The anechoic cyst produces positive contrast for every provider."""
        for name, metrics in study.items():
            assert metrics["contrast_db"] > 0, name
            assert metrics["cnr"] > 0, name

    def test_exact_reference_nrms_zero(self, study):
        assert study["exact"]["nrms_vs_exact"] == 0.0

    def test_approximate_providers_close_to_exact(self, study):
        for name in ("tablefree", "tablesteer"):
            assert study[name]["nrms_vs_exact"] < 0.5
            # Contrast degrades by at most ~2 dB on this small system.
            assert study[name]["contrast_db"] > \
                study["exact"]["contrast_db"] - 2.0

    def test_deterministic(self, tiny):
        a = cyst_contrast_study(tiny, n_scatterers=300, seed=5)
        b = cyst_contrast_study(tiny, n_scatterers=300, seed=5)
        assert a == b


class TestResolutionVsDepth:
    @pytest.fixture(scope="class")
    def study(self, tiny):
        return resolution_vs_depth_study(tiny, depth_fractions=(0.4, 0.8))

    def test_structure(self, study, tiny):
        for name, rows in study.items():
            assert len(rows) == 2
            for row in rows:
                assert row["axial_fwhm"] > 0
                assert row["lateral_fwhm"] > 0

    def test_targets_found_at_increasing_depths(self, study):
        for rows in study.values():
            assert rows[1]["peak_depth_index"] > rows[0]["peak_depth_index"]

    def test_approximate_delays_do_not_blow_up_psf(self, study):
        """Approximate delay generation broadens the PSF by at most ~50 %."""
        for depth_index in range(2):
            exact_axial = study["exact"][depth_index]["axial_fwhm"]
            for name in ("tablefree", "tablesteer"):
                assert study[name][depth_index]["axial_fwhm"] <= \
                    1.5 * exact_axial + 1.0


class TestDelayErrorToImageError:
    @pytest.fixture(scope="class")
    def sweep(self, tiny):
        return delay_error_to_image_error(tiny, deltas=(0.125, 0.5, 2.0))

    def test_delay_error_grows_with_delta(self, sweep):
        errors = [row["mean_delay_error_samples"] for row in sweep]
        assert errors == sorted(errors)

    def test_image_error_grows_with_delay_error(self, sweep):
        image_errors = [row["image_nrms_vs_exact"] for row in sweep]
        assert image_errors[-1] >= image_errors[0]

    def test_segment_count_shrinks_with_delta(self, sweep):
        segments = [row["segments"] for row in sweep]
        assert segments == sorted(segments, reverse=True)

    def test_tight_delta_keeps_image_error_small(self, sweep):
        assert sweep[0]["image_nrms_vs_exact"] < 0.15
