"""Tests for repro.runtime.backends and repro.runtime.cache.

The load-bearing guarantee of the runtime is that execution strategy never
changes the image: ``vectorized`` and ``sharded`` must reproduce the
``reference`` per-scanline volume for every delay architecture.  The cache
tests pin the LRU bookkeeping the throughput claims rest on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.interpolation import InterpolationKind
from repro.pipeline.imaging import make_delay_provider
from repro.runtime import (
    BACKEND_NAMES,
    DelayTableCache,
    ReferenceBackend,
    build_tables,
    make_backend,
    tables_key,
)

ARCHITECTURES = ("exact", "tablefree", "tablesteer")


@pytest.fixture(scope="module")
def beamformers(tiny):
    """One beamformer per delay architecture, sharing the tiny system."""
    return {name: DelayAndSumBeamformer(tiny, make_delay_provider(tiny, name))
            for name in ARCHITECTURES}


class TestBackendEquivalence:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    @pytest.mark.parametrize("backend", ["vectorized", "sharded"])
    def test_matches_reference_volume(self, beamformers, tiny_channel_data,
                                      architecture, backend):
        beamformer = beamformers[architecture]
        reference = ReferenceBackend(beamformer).beamform_volume(
            tiny_channel_data)
        batched = make_backend(backend, beamformer).beamform_volume(
            tiny_channel_data)
        assert batched.shape == reference.shape
        np.testing.assert_allclose(batched, reference, rtol=0, atol=1e-9)

    def test_linear_interpolation_also_matches(self, tiny, tiny_channel_data):
        beamformer = DelayAndSumBeamformer(
            tiny, make_delay_provider(tiny, "exact"),
            interpolation=InterpolationKind.LINEAR)
        reference = ReferenceBackend(beamformer).beamform_volume(
            tiny_channel_data)
        batched = make_backend("vectorized", beamformer).beamform_volume(
            tiny_channel_data)
        np.testing.assert_allclose(batched, reference, rtol=0, atol=1e-9)

    def test_unknown_backend_rejected(self, beamformers):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", beamformers["exact"])

    def test_backend_registry_names(self):
        assert set(BACKEND_NAMES) == {"reference", "vectorized", "sharded"}


class TestVolumeDelayDefault:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_bulk_tensor_matches_scanlines(self, tiny, beamformers,
                                           architecture):
        provider = beamformers[architecture].delays
        volume = provider.volume_delays_samples()
        n_theta, n_phi, n_depth = beamformers[architecture].grid.shape
        assert volume.shape == (n_theta, n_phi, n_depth,
                                tiny.transducer.element_count)
        np.testing.assert_allclose(
            volume[2, 3], provider.scanline_delays_samples(2, 3),
            rtol=0, atol=1e-9)


class TestDelayTables:
    def test_tables_shapes_and_key_stability(self, tiny, beamformers):
        beamformer = beamformers["exact"]
        tables = build_tables(beamformer)
        n_points = tiny.volume.focal_point_count
        assert tables.delays.shape == (n_points, tiny.transducer.element_count)
        assert tables.weights.shape == tables.delays.shape
        assert tables.grid_shape == beamformer.grid.shape
        assert tables.nbytes == tables.delays.nbytes + tables.weights.nbytes
        assert tables_key(beamformer) == tables_key(beamformer)

    def test_key_distinguishes_architectures(self, beamformers):
        keys = {tables_key(b) for b in beamformers.values()}
        assert len(keys) == len(ARCHITECTURES)


class TestDelayTableCache:
    def test_hit_and_miss_counting(self):
        cache = DelayTableCache(capacity=2)
        calls = []
        for _ in range(3):
            cache.get_or_build("a", lambda: calls.append(1) or "va")
        assert calls == [1]
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (2, 1, 0)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_order(self):
        cache = DelayTableCache(capacity=2)
        cache.get_or_build("a", lambda: "va")
        cache.get_or_build("b", lambda: "vb")
        cache.get_or_build("a", lambda: "va")   # refresh 'a' -> 'b' is LRU
        cache.get_or_build("c", lambda: "vc")   # evicts 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_rebuild_after_eviction(self):
        cache = DelayTableCache(capacity=1)
        builds = []
        cache.get_or_build("a", lambda: builds.append("a") or 1)
        cache.get_or_build("b", lambda: builds.append("b") or 2)
        cache.get_or_build("a", lambda: builds.append("a") or 1)
        assert builds == ["a", "b", "a"]

    def test_clear_keeps_counters(self):
        cache = DelayTableCache()
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DelayTableCache(capacity=0)

    def test_shared_cache_serves_both_batched_backends(self, beamformers,
                                                       tiny_channel_data):
        beamformer = beamformers["tablesteer"]
        cache = DelayTableCache()
        vectorized = make_backend("vectorized", beamformer, cache=cache)
        sharded = make_backend("sharded", beamformer, cache=cache)
        vectorized.beamform_volume(tiny_channel_data)
        sharded.beamform_volume(tiny_channel_data)
        stats = cache.stats
        assert stats.misses == 1      # built once by the first backend
        assert stats.hits == 1        # reused by the second
