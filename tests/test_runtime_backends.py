"""Tests for repro.runtime.backends and repro.runtime.cache.

The load-bearing guarantee of the runtime is that execution strategy never
changes the image: ``vectorized`` and ``sharded`` must reproduce the
``reference`` per-scanline volume bit-for-bit at ``float64`` (all three run
through the same :mod:`repro.kernels` math) and within the pinned tolerance
at ``float32``.  The cache tests pin the LRU bookkeeping — and the key
isolation across interpolation/precision — that the throughput claims rest
on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.architectures import ARCHITECTURES
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.interpolation import InterpolationKind
from repro.kernels import CompiledOptions, Precision, numba_available
from repro.runtime import (
    BACKEND_NAMES,
    BACKENDS,
    BackendUnavailable,
    PlanCache,
    ReferenceBackend,
    ShardedBackend,
    make_backend,
    tables_key,
)

ARCH_NAMES = ("exact", "tablefree", "tablesteer")

# The `compiled` backend is registered unconditionally but only buildable
# with the optional numba package; parameterised equivalence tests mark it
# skip-with-reason on numba-free hosts (the fallback error path has its own
# unconditional tests below).
BUILDABLE_BACKENDS = tuple(
    pytest.param(name, marks=pytest.mark.skipif(
        not numba_available(),
        reason="numba not installed (compiled backend unavailable)"))
    if name == "compiled" else name
    for name in BACKEND_NAMES)


@pytest.fixture(scope="module")
def beamformers(tiny):
    """One beamformer per delay architecture, sharing the tiny system."""
    return {name: DelayAndSumBeamformer(tiny, ARCHITECTURES.create(name, tiny))
            for name in ARCH_NAMES}


class TestBackendEquivalence:
    @pytest.mark.parametrize("architecture", ARCH_NAMES)
    @pytest.mark.parametrize("backend", ["vectorized", "sharded"])
    def test_matches_reference_volume(self, beamformers, tiny_channel_data,
                                      architecture, backend):
        beamformer = beamformers[architecture]
        reference = ReferenceBackend(beamformer).beamform_volume(
            tiny_channel_data)
        batched = BACKENDS.create(backend, beamformer, None, None) \
            .beamform_volume(tiny_channel_data)
        assert batched.shape == reference.shape
        np.testing.assert_allclose(batched, reference, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("backend", BUILDABLE_BACKENDS)
    def test_float32_within_pinned_tolerance(self, beamformers,
                                             tiny_channel_data, backend):
        beamformer = beamformers["tablesteer"]
        reference = ReferenceBackend(beamformer).beamform_volume(
            tiny_channel_data)
        fast = BACKENDS.create(backend, beamformer, None, "float32") \
            .beamform_volume(tiny_channel_data)
        assert fast.dtype == np.float32
        Precision.FLOAT32.tolerance.assert_allclose(fast, reference)

    def test_linear_interpolation_also_matches(self, tiny, tiny_channel_data):
        beamformer = DelayAndSumBeamformer(
            tiny, ARCHITECTURES.create("exact", tiny),
            interpolation=InterpolationKind.LINEAR)
        reference = ReferenceBackend(beamformer).beamform_volume(
            tiny_channel_data)
        batched = BACKENDS.create("vectorized", beamformer, None, None) \
            .beamform_volume(tiny_channel_data)
        np.testing.assert_allclose(batched, reference, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("backend", BUILDABLE_BACKENDS)
    def test_batch_equals_per_frame(self, beamformers, tiny_channel_data,
                                    backend):
        """beamform_batch must be frame-for-frame identical to the loop."""
        beamformer = beamformers["exact"]
        instance = BACKENDS.create(backend, beamformer, None, None)
        single = instance.beamform_volume(tiny_channel_data)
        batch = instance.beamform_batch([tiny_channel_data,
                                         tiny_channel_data])
        assert batch.shape == (2, *single.shape)
        np.testing.assert_array_equal(batch[0], single)
        np.testing.assert_array_equal(batch[1], single)

    def test_unknown_backend_rejected(self, beamformers):
        with pytest.raises(ValueError, match="unknown backend"):
            BACKENDS.create("gpu", beamformers["exact"], None, None)

    def test_backend_registry_names(self):
        assert set(BACKEND_NAMES) == {"reference", "vectorized", "sharded",
                                      "compiled"}

    def test_make_backend_shim_warns_and_delegates(self, beamformers,
                                                   tiny_channel_data):
        with pytest.warns(DeprecationWarning, match="make_backend"):
            backend = make_backend("vectorized", beamformers["exact"])
        reference = ReferenceBackend(beamformers["exact"]).beamform_volume(
            tiny_channel_data)
        np.testing.assert_allclose(backend.beamform_volume(tiny_channel_data),
                                   reference, rtol=0, atol=1e-9)


class TestCompiledBackendFallback:
    """The no-numba degradation contract (runs on every host: the tests pin
    availability via the module flag rather than depending on the actual
    environment)."""

    def test_registry_lists_compiled_unconditionally(self):
        assert "compiled" in BACKENDS.names()
        description = dict(BACKENDS.items())["compiled"].description
        assert "fused" in description
        if not numba_available():
            assert "unavailable" in description

    def test_build_without_numba_raises_backend_unavailable(
            self, beamformers, monkeypatch):
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        with pytest.raises(BackendUnavailable, match="numba"):
            BACKENDS.create("compiled", beamformers["exact"], None, None)

    def test_error_message_is_actionable(self, beamformers, monkeypatch):
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        with pytest.raises(BackendUnavailable) as excinfo:
            BACKENDS.create("compiled", beamformers["exact"], None, None)
        message = str(excinfo.value)
        assert "pip install numba" in message
        assert "vectorized" in message      # names a working alternative

    def test_backend_unavailable_is_a_value_error(self):
        # The CLI's existing `except ValueError -> exit 2` paths must catch
        # it without new plumbing.
        assert issubclass(BackendUnavailable, ValueError)

    def test_quantized_rejected_before_numba_gate(self, tiny, monkeypatch):
        """The quantized rejection must fire even without numba installed —
        it is a design restriction, not an environment one."""
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        provider = ARCHITECTURES.create("exact", tiny)
        quantized = DelayAndSumBeamformer(tiny, provider, quantization=18)
        with pytest.raises(ValueError, match="quantized") as excinfo:
            BACKENDS.create("compiled", quantized, None, None)
        assert not isinstance(excinfo.value, BackendUnavailable)

    def test_options_validation(self):
        with pytest.raises(ValueError, match="threads"):
            CompiledOptions(threads=0)
        with pytest.raises(ValueError, match="block_size"):
            CompiledOptions(block_size=0)
        # Defaults are valid and hashable (used inside plan keys).
        hash(CompiledOptions())

    def test_plan_key_variant_isolation(self, beamformers):
        """Compiled plans must never share cache entries with NumPy plans,
        and fastmath must get its own entry (different float semantics)."""
        beamformer = beamformers["exact"]
        numpy_key = tables_key(beamformer)
        from repro.kernels import plan_key
        exact_key = plan_key(beamformer, None,
                             variant=CompiledOptions().variant())
        fastmath_key = plan_key(
            beamformer, None, variant=CompiledOptions(fastmath=True).variant())
        assert len({numpy_key, exact_key, fastmath_key}) == 3
        # Launch-time knobs (threads, block size) do NOT split the key:
        # they change scheduling, not the compiled artifact's math.
        assert plan_key(beamformer, None,
                        variant=CompiledOptions(threads=2).variant()) \
            == exact_key


class TestShardedEdgeCases:
    def test_single_shard(self, beamformers, tiny_channel_data):
        beamformer = beamformers["exact"]
        one = ShardedBackend(beamformer, shards=1)
        baseline = BACKENDS.create("vectorized", beamformer, None, None) \
            .beamform_volume(tiny_channel_data)
        np.testing.assert_array_equal(one.beamform_volume(tiny_channel_data),
                                      baseline)
        assert len(one._blocks(baseline.size)) == 1

    def test_more_shards_than_points(self, beamformers, tiny_channel_data):
        beamformer = beamformers["exact"]
        n_points = int(np.prod(beamformer.grid.shape))
        over = ShardedBackend(beamformer, shards=n_points * 3, max_workers=2)
        blocks = over._blocks(n_points)
        # Every point covered exactly once, no empty blocks dispatched.
        assert len(blocks) == n_points
        assert all(block.stop > block.start for block in blocks)
        baseline = BACKENDS.create("vectorized", beamformer, None, None) \
            .beamform_volume(tiny_channel_data)
        np.testing.assert_array_equal(over.beamform_volume(tiny_channel_data),
                                      baseline)

    def test_worker_exception_propagates(self, beamformers,
                                         tiny_channel_data, monkeypatch):
        """A failing shard must raise in the caller, not hang the pool."""
        backend = ShardedBackend(beamformers["exact"], shards=4,
                                 max_workers=2)

        def boom(plan, channel_data, rows):
            raise RuntimeError("shard exploded")

        monkeypatch.setattr(backend, "_execute_rows", boom)
        with pytest.raises(RuntimeError, match="shard exploded"):
            backend.beamform_volume(tiny_channel_data)
        with pytest.raises(RuntimeError, match="shard exploded"):
            backend.beamform_batch([tiny_channel_data])


class TestPlanCacheKeys:
    def test_key_stability_and_architecture_separation(self, beamformers):
        keys = {tables_key(b) for b in beamformers.values()}
        assert len(keys) == len(ARCH_NAMES)
        one = beamformers["exact"]
        assert tables_key(one) == tables_key(one)

    def test_key_distinguishes_interpolation(self, tiny):
        """Engines differing only in interpolation must never share plans."""
        provider = ARCHITECTURES.create("exact", tiny)
        nearest = DelayAndSumBeamformer(tiny, provider)
        linear = DelayAndSumBeamformer(
            tiny, provider, interpolation=InterpolationKind.LINEAR)
        assert tables_key(nearest) != tables_key(linear)

    def test_key_distinguishes_precision(self, beamformers):
        """Engines differing only in dtype must never share plans."""
        beamformer = beamformers["exact"]
        assert tables_key(beamformer, "float64") != \
            tables_key(beamformer, "float32")

    def test_key_distinguishes_quantization(self, tiny):
        """Engines differing only in quantisation spec must never share
        plans (the PR 3 cache-poisoning class of bug, third edition)."""
        provider = ARCHITECTURES.create("exact", tiny)
        float_engine = DelayAndSumBeamformer(tiny, provider)
        q18 = DelayAndSumBeamformer(tiny, provider, quantization=18)
        q13 = DelayAndSumBeamformer(tiny, provider, quantization=13)
        keys = {tables_key(float_engine), tables_key(q18), tables_key(q13)}
        assert len(keys) == 3
        # The spec's rounding/overflow policy is part of the key too.
        from repro.fixedpoint.quantize import RoundingMode
        from repro.kernels import QuantizationSpec
        nearest_even = DelayAndSumBeamformer(
            tiny, provider,
            quantization=QuantizationSpec.from_total_bits(
                18, rounding=RoundingMode.NEAREST_EVEN))
        assert tables_key(nearest_even) != tables_key(q18)

    def test_shared_cache_isolates_quantization(self, tiny,
                                                tiny_channel_data):
        """One cache, float + two quantized engines: three distinct plans,
        and the quantized volumes actually differ from the float one."""
        provider = ARCHITECTURES.create("exact", tiny)
        cache = PlanCache(capacity=8)
        volumes = {}
        for quantization in (None, 18, 13):
            beamformer = DelayAndSumBeamformer(tiny, provider,
                                               quantization=quantization)
            backend = BACKENDS.create("vectorized", beamformer, cache, None)
            volumes[quantization] = backend.beamform_volume(
                tiny_channel_data)
            # A second frame from the same engine must hit, not recompile.
            backend.beamform_volume(tiny_channel_data)
        assert cache.stats.misses == 3
        assert cache.stats.hits == 3
        assert not np.array_equal(volumes[None], volumes[18])
        assert not np.array_equal(volumes[18], volumes[13])
        from repro.kernels import QuantizedPlan
        cached_types = {type(plan) for plan in cache._entries.values()}
        assert QuantizedPlan in cached_types

    def test_shared_cache_isolates_interpolation_and_dtype(
            self, tiny, tiny_channel_data):
        """One cache, four engine flavours: four distinct plans, no mixups."""
        provider = ARCHITECTURES.create("exact", tiny)
        cache = PlanCache(capacity=8)
        volumes = {}
        for kind in (InterpolationKind.NEAREST, InterpolationKind.LINEAR):
            beamformer = DelayAndSumBeamformer(tiny, provider,
                                               interpolation=kind)
            for precision in ("float64", "float32"):
                backend = BACKENDS.create("vectorized", beamformer, cache,
                                          precision)
                volumes[(kind, precision)] = backend.beamform_volume(
                    tiny_channel_data)
        assert cache.stats.misses == 4        # four distinct plans compiled
        assert volumes[(InterpolationKind.NEAREST, "float64")].dtype \
            == np.float64
        assert volumes[(InterpolationKind.NEAREST, "float32")].dtype \
            == np.float32
        # Interpolation actually changed the result (so a shared plan would
        # have been an observable bug, not a harmless dedup).
        assert not np.array_equal(
            volumes[(InterpolationKind.NEAREST, "float64")],
            volumes[(InterpolationKind.LINEAR, "float64")])


class TestPlanCache:
    def test_hit_and_miss_counting(self):
        cache = PlanCache(capacity=2)
        calls = []
        for _ in range(3):
            cache.get_or_build("a", lambda: calls.append(1) or "va")
        assert calls == [1]
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (2, 1, 0)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.get_or_build("a", lambda: "va")
        cache.get_or_build("b", lambda: "vb")
        cache.get_or_build("a", lambda: "va")   # refresh 'a' -> 'b' is LRU
        cache.get_or_build("c", lambda: "vc")   # evicts 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_rebuild_after_eviction(self):
        cache = PlanCache(capacity=1)
        builds = []
        cache.get_or_build("a", lambda: builds.append("a") or 1)
        cache.get_or_build("b", lambda: builds.append("b") or 2)
        cache.get_or_build("a", lambda: builds.append("a") or 1)
        assert builds == ["a", "b", "a"]

    def test_clear_keeps_counters(self):
        cache = PlanCache()
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_legacy_alias(self):
        from repro.runtime import DelayTableCache
        assert DelayTableCache is PlanCache

    def test_shared_cache_serves_both_batched_backends(self, beamformers,
                                                       tiny_channel_data):
        beamformer = beamformers["tablesteer"]
        cache = PlanCache()
        vectorized = BACKENDS.create("vectorized", beamformer, cache, None)
        sharded = BACKENDS.create("sharded", beamformer, cache, None)
        vectorized.beamform_volume(tiny_channel_data)
        sharded.beamform_volume(tiny_channel_data)
        stats = cache.stats
        assert stats.misses == 1      # compiled once by the first backend
        assert stats.hits == 1        # reused by the second


class _Sized:
    """A fake plan exposing just the ``nbytes`` the cache tracks."""

    def __init__(self, nbytes):
        self.nbytes = nbytes


class TestPlanCacheByteBudget:
    def test_bytes_tracked_without_a_budget(self):
        cache = PlanCache()
        cache.get_or_build("a", lambda: _Sized(100))
        cache.get_or_build("b", lambda: _Sized(50))
        stats = cache.stats
        assert stats.bytes == 150 and stats.peak_bytes == 150
        assert stats.max_bytes is None

    def test_unsized_values_count_as_zero(self):
        cache = PlanCache()
        cache.get_or_build("a", lambda: "not a plan")
        assert cache.stats.bytes == 0

    def test_byte_eviction_in_lru_order(self):
        cache = PlanCache(max_bytes=300)
        cache.get_or_build("a", lambda: _Sized(100))
        cache.get_or_build("b", lambda: _Sized(100))
        cache.get_or_build("a", lambda: _Sized(100))  # refresh: 'b' is LRU
        cache.get_or_build("c", lambda: _Sized(150))  # 350 > 300: evict 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        stats = cache.stats
        assert stats.bytes == 250 and stats.evictions == 1

    def test_byte_budget_replaces_count_bound(self):
        # Four segments of 100 B fit an 800 B budget even though the
        # default entry capacity is 4: a fifth still fits, no eviction.
        cache = PlanCache(capacity=2, max_bytes=800)
        for key in "abcde":
            cache.get_or_build(key, lambda: _Sized(100))
        assert len(cache) == 5
        assert cache.stats.evictions == 0

    def test_size_hint_evicts_before_builder_runs(self):
        # The budget must hold even *while* the new segment is being
        # built: with a hint, resident bytes drop below budget-minus-hint
        # before the builder is invoked.
        cache = PlanCache(max_bytes=250)
        cache.get_or_build("a", lambda: _Sized(100))
        cache.get_or_build("b", lambda: _Sized(100))
        resident_at_build = []

        def build():
            resident_at_build.append(cache.stats.bytes)
            return _Sized(100)

        cache.get_or_build("c", build, size_hint=100)
        assert resident_at_build == [100]           # 'a' evicted pre-build
        assert cache.stats.bytes == 200 <= 250

    def test_budget_never_exceeded_across_a_sweep(self):
        # A tiled sweep: many equally-sized segments streamed through a
        # budget sized for two of them.  At no observable point do the
        # resident bytes exceed the budget.
        cache = PlanCache(max_bytes=200)
        for index in range(10):
            cache.get_or_build(index, lambda: _Sized(100), size_hint=100)
            assert cache.stats.bytes <= 200
        stats = cache.stats
        assert stats.peak_bytes == 200
        assert stats.evictions == 8
        assert len(cache) == 2

    def test_sole_oversized_entry_is_kept(self):
        # An entry larger than the whole budget is never evicted while it
        # is the only one — the caller holds it — but the overshoot is
        # visible in peak_bytes.
        cache = PlanCache(max_bytes=100)
        cache.get_or_build("big", lambda: _Sized(500))
        assert "big" in cache
        assert cache.stats.peak_bytes == 500

    def test_limit_bytes_tightens_never_loosens(self):
        cache = PlanCache(max_bytes=400)
        cache.get_or_build("a", lambda: _Sized(100))
        cache.get_or_build("b", lambda: _Sized(100))
        cache.limit_bytes(150)            # tightens: evicts down to 'b'
        assert cache.max_bytes == 150
        assert "a" not in cache and "b" in cache
        cache.limit_bytes(1000)           # looser bound is ignored
        assert cache.max_bytes == 150

    def test_limit_bytes_accepts_suffixed_strings(self):
        cache = PlanCache()
        cache.limit_bytes("64K")
        assert cache.max_bytes == 64 * 1024
        assert PlanCache(max_bytes="1M").max_bytes == 1 << 20

    def test_clear_resets_bytes_keeps_peak(self):
        cache = PlanCache(max_bytes=400)
        cache.get_or_build("a", lambda: _Sized(300))
        cache.clear()
        stats = cache.stats
        assert stats.bytes == 0 and stats.peak_bytes == 300

    def test_gauges_export_via_prometheus(self):
        from repro.observability import MetricsRegistry
        from repro.observability.export import render_prometheus

        metrics = MetricsRegistry()
        cache = PlanCache(metrics=metrics, max_bytes=250)
        cache.get_or_build("a", lambda: _Sized(100), size_hint=100)
        cache.get_or_build("b", lambda: _Sized(100), size_hint=100)
        cache.get_or_build("c", lambda: _Sized(100), size_hint=100)
        text = render_prometheus(metrics)
        assert "plan_cache_bytes 200" in text
        assert "plan_cache_peak_bytes 200" in text
        assert "plan_cache_evictions_total 1" in text
