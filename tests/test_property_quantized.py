"""Property-based tests (hypothesis) for the quantized kernel path.

These pin the invariants the bit-true execution mode leans on:
re-quantisation is the identity (so execution paths may hoist or repeat
quantisation freely), quantised values always respect the format's
saturation bounds, the two nearest-rounding modes disagree exactly at
half-way codes in the documented way, and the gather-index build can never
read outside the echo buffer no matter what delays it is fed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.format import QFormat
from repro.fixedpoint.quantize import OverflowMode, RoundingMode, quantize, to_raw
from repro.kernels import (
    QuantizationSpec,
    build_gather_index,
    gather_interp,
    quantized_delay_and_sum,
)

formats = st.builds(
    QFormat,
    integer_bits=st.integers(min_value=1, max_value=15),
    fraction_bits=st.integers(min_value=0, max_value=15),
    signed=st.booleans(),
)

rounding_modes = st.sampled_from(list(RoundingMode))
overflow_modes = st.sampled_from([OverflowMode.SATURATE, OverflowMode.WRAP])

finite_floats = st.floats(min_value=-1e5, max_value=1e5,
                          allow_nan=False, allow_infinity=False)

specs = st.builds(
    QuantizationSpec,
    delay_format=formats,
    sample_format=formats,
    weight_format=formats,
    accumulator_format=formats,
    rounding=rounding_modes,
    overflow=overflow_modes,
)


@given(spec=specs, values=st.lists(finite_floats, min_size=1, max_size=32))
@settings(max_examples=150, deadline=None)
def test_requantisation_idempotent_for_every_stage(spec, values):
    """Quantising an already-quantised array changes nothing, under every
    rounding/overflow policy — the property that lets backends pre-quantise
    a frame once and the row/batch kernels quantise again for free."""
    array = np.asarray(values)
    for stage in (spec.quantize_delays, spec.quantize_samples,
                  spec.quantize_weights, spec.quantize_accumulator):
        once = stage(array)
        np.testing.assert_array_equal(stage(once), once)


@given(fmt=formats, rounding=rounding_modes,
       values=st.lists(finite_floats, min_size=1, max_size=32))
@settings(max_examples=150, deadline=None)
def test_saturation_bounds_respected(fmt, rounding, values):
    """Saturating quantisation lands inside [min_value, max_value] for any
    input, however far outside the representable range."""
    result = quantize(np.asarray(values), fmt, rounding=rounding,
                      overflow=OverflowMode.SATURATE)
    assert np.all(result >= fmt.min_value)
    assert np.all(result <= fmt.max_value)


@given(fmt=formats, code=st.integers(min_value=-(1 << 14), max_value=1 << 14))
@settings(max_examples=200, deadline=None)
def test_nearest_vs_nearest_even_halfway_cases(fmt, code):
    """A value exactly half-way between two codes rounds away from zero
    under NEAREST and to the even code under NEAREST_EVEN."""
    half = (code + 0.5) * fmt.resolution
    # Stay inside the representable range so saturation cannot mask the
    # rounding difference; the scaled value (code + 0.5) is exact in
    # float64 for these magnitudes, so this genuinely is a half-way case.
    if not (fmt.min_raw <= code < fmt.max_raw):
        return
    if fmt.min_value <= half <= fmt.max_value:
        nearest = to_raw(half, fmt, rounding=RoundingMode.NEAREST)
        even = to_raw(half, fmt, rounding=RoundingMode.NEAREST_EVEN)
        expected_away = code + 1 if half >= 0 else code
        expected_even = code if code % 2 == 0 else code + 1
        assert int(nearest) == expected_away
        assert int(even) == expected_even


@given(
    n_samples=st.integers(min_value=1, max_value=64),
    n_points=st.integers(min_value=1, max_value=16),
    n_elements=st.integers(min_value=1, max_value=8),
    kind=st.sampled_from(["nearest", "linear"]),
    scale=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_gather_index_never_reads_outside_echo_buffer(
        n_samples, n_points, n_elements, kind, scale, seed):
    """Whatever the delays — huge, negative, fractional — every precompiled
    index is clipped into the buffer, out-of-range fetches are masked to
    zero, and gathering never faults."""
    rng = np.random.default_rng(seed)
    delays = rng.uniform(-scale, scale, size=(n_points, n_elements))
    index = build_gather_index(delays, n_samples, kind)
    for array in (index.indices, index.lower, index.upper):
        if array is not None:
            assert np.all(array >= 0)
            assert np.all(array < n_samples)
    samples = rng.normal(size=(n_elements, n_samples))
    gathered = gather_interp(samples, index)
    assert gathered.shape == (n_points, n_elements)
    if kind == "nearest":
        out_of_range = (np.floor(delays + 0.5) < 0) | \
            (np.floor(delays + 0.5) >= n_samples)
        assert np.all(gathered[out_of_range] == 0.0)


@given(
    total_bits=st.integers(min_value=13, max_value=20),
    n_samples=st.integers(min_value=4, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_quantized_delay_and_sum_saturates_and_stays_in_buffer(
        total_bits, n_samples, seed):
    """The uncompiled quantized kernel is total: wild delays and amplitudes
    in, a finite accumulator-format-bounded volume out."""
    rng = np.random.default_rng(seed)
    spec = QuantizationSpec.from_total_bits(total_bits)
    samples = rng.normal(scale=100.0, size=(4, n_samples))
    delays = rng.uniform(-1e5, 1e5, size=(6, 4))
    weights = rng.uniform(0.0, 10.0, size=(6, 4))
    result = quantized_delay_and_sum(samples, delays, weights, spec)
    fmt = spec.accumulator_format
    assert np.all(result >= fmt.min_value)
    assert np.all(result <= fmt.max_value)
