"""Tests for repro.fixedpoint.array: FixedPointArray arithmetic and rounding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint.array import FixedPointArray
from repro.fixedpoint.format import CORRECTION_18B, REFERENCE_DELAY_18B, signed, unsigned
from repro.fixedpoint.quantize import OverflowMode


class TestConstruction:
    def test_from_float_roundtrip(self):
        fmt = unsigned(8, 4)
        values = np.array([1.25, 2.5, 100.0])
        arr = FixedPointArray.from_float(values, fmt)
        np.testing.assert_allclose(arr.to_float(), values)

    def test_shape_and_len(self):
        fmt = unsigned(8, 0)
        arr = FixedPointArray.from_float(np.zeros((3, 4)), fmt)
        assert arr.shape == (3, 4)
        arr1d = FixedPointArray.from_float(np.zeros(5), fmt)
        assert len(arr1d) == 5

    def test_storage_bits(self):
        arr = FixedPointArray.from_float(np.zeros(10), REFERENCE_DELAY_18B)
        assert arr.storage_bits() == 10 * 18


class TestAddition:
    def test_add_same_format(self):
        fmt = unsigned(8, 2)
        a = FixedPointArray.from_float(np.array([1.0, 2.25]), fmt)
        b = FixedPointArray.from_float(np.array([0.5, 0.25]), fmt)
        result = a.add(b)
        np.testing.assert_allclose(result.to_float(), [1.5, 2.5])

    def test_add_aligns_binary_points(self):
        # U13.5 reference plus S13.4 correction: the paper's exact datapath.
        ref = FixedPointArray.from_float(np.array([100.03125]), REFERENCE_DELAY_18B)
        corr = FixedPointArray.from_float(np.array([-2.5]), CORRECTION_18B)
        result = ref.add(corr)
        assert result.to_float()[0] == pytest.approx(97.53125)

    def test_result_format_widened(self):
        a = FixedPointArray.from_float(np.array([5.0]), unsigned(3, 1))
        b = FixedPointArray.from_float(np.array([-5.0]), signed(3, 2))
        result = a.add(b)
        assert result.fmt.signed
        assert result.fmt.fraction_bits == 2
        assert result.fmt.integer_bits == 4
        assert result.to_float()[0] == pytest.approx(0.0)

    def test_add_explicit_result_format_saturates(self):
        fmt = unsigned(3, 0)
        a = FixedPointArray.from_float(np.array([7.0]), fmt)
        b = FixedPointArray.from_float(np.array([7.0]), fmt)
        result = a.add(b, result_fmt=fmt)
        assert result.to_float()[0] == pytest.approx(7.0)

    def test_add_overflow_error_mode(self):
        fmt = unsigned(3, 0)
        a = FixedPointArray.from_float(np.array([7.0]), fmt)
        b = FixedPointArray.from_float(np.array([7.0]), fmt)
        with pytest.raises(OverflowError):
            a.add(b, result_fmt=fmt, overflow=OverflowMode.ERROR)

    def test_add_overflow_wrap_mode(self):
        fmt = unsigned(3, 0)
        a = FixedPointArray.from_float(np.array([7.0]), fmt)
        b = FixedPointArray.from_float(np.array([1.0]), fmt)
        result = a.add(b, result_fmt=fmt, overflow=OverflowMode.WRAP)
        assert result.to_float()[0] == pytest.approx(0.0)


class TestRoundToInteger:
    def test_round_half_away_positive(self):
        fmt = unsigned(8, 2)
        arr = FixedPointArray.from_float(np.array([2.5, 2.25, 2.75]), fmt)
        np.testing.assert_array_equal(arr.round_to_integer(), [3, 2, 3])

    def test_round_half_away_negative(self):
        fmt = signed(8, 2)
        arr = FixedPointArray.from_float(np.array([-2.5, -2.25, -2.75]), fmt)
        np.testing.assert_array_equal(arr.round_to_integer(), [-3, -2, -3])

    def test_round_integer_format_is_identity(self):
        fmt = unsigned(8, 0)
        arr = FixedPointArray.from_float(np.array([3.0, 5.0]), fmt)
        np.testing.assert_array_equal(arr.round_to_integer(), [3, 5])

    def test_rounding_matches_float_reference(self, rng):
        fmt = unsigned(13, 5)
        values = rng.uniform(0, 8000, 500)
        arr = FixedPointArray.from_float(values, fmt)
        expected = np.floor(arr.to_float() + 0.5).astype(np.int64)
        np.testing.assert_array_equal(arr.round_to_integer(), expected)


class TestDatapathEquivalence:
    def test_fixed_point_sum_equals_float_of_quantised_values(self, rng):
        """The FixedPointArray add must equal adding the quantised floats.

        Both operands are exact multiples of their resolution, so the float
        sum is exact and the two paths must agree bit for bit.
        """
        ref_values = rng.uniform(0, 8000, 200)
        corr_values = rng.uniform(-200, 200, 200)
        ref = FixedPointArray.from_float(ref_values, REFERENCE_DELAY_18B)
        corr = FixedPointArray.from_float(corr_values, CORRECTION_18B)
        hw_sum = ref.add(corr).to_float()
        float_sum = ref.to_float() + corr.to_float()
        np.testing.assert_allclose(hw_sum, float_sum)
