"""Tests for repro.hardware.scaling: design-space exploration sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import paper_system
from repro.hardware.scaling import (
    aperture_sweep,
    find_minimum_design,
    tablefree_device_sweep,
    tablefree_frequency_sweep,
    tablesteer_block_sweep,
)


@pytest.fixture(scope="module")
def system():
    return paper_system()


class TestTableFreeFrequencySweep:
    def test_frame_rate_monotone_in_clock(self, system):
        points = tablefree_frequency_sweep(system)
        rates = [p.frame_rate for p in points]
        assert rates == sorted(rates)

    def test_paper_point_present(self, system):
        points = {p.parameters["clock_mhz"]: p
                  for p in tablefree_frequency_sweep(system)}
        assert points[167.0].frame_rate == pytest.approx(7.8, abs=0.4)
        assert not points[167.0].meets_target

    def test_high_clock_meets_target(self, system):
        points = tablefree_frequency_sweep(system, clocks_hz=(400e6,))
        assert points[0].meets_target

    def test_as_dict_merges_parameters(self, system):
        point = tablefree_frequency_sweep(system, clocks_hz=(167e6,))[0]
        d = point.as_dict()
        assert d["clock_mhz"] == 167.0
        assert "frame_rate" in d


class TestTableFreeDeviceSweep:
    def test_supported_side_grows_with_device(self, system):
        points = tablefree_device_sweep(system)
        sides = [p.parameters["supported_side"] for p in points]
        assert sides == sorted(sides)

    def test_virtex7_point_is_42(self, system):
        points = {p.parameters["lut_scaling"]: p
                  for p in tablefree_device_sweep(system)}
        assert points[1.0].parameters["supported_side"] == 42

    def test_paper_projection_double_luts_not_yet_100x100(self, system):
        """Doubling the LUTs (the 20 nm UltraScale argument) is still short of
        the full 100x100 aperture — the paper pins its hopes on the 16 nm
        family plus tuning."""
        points = {p.parameters["lut_scaling"]: p
                  for p in tablefree_device_sweep(system)}
        assert points[2.0].parameters["supported_side"] < 100
        assert points[4.0].parameters["supported_side"] < 100 or \
            points[4.0].meets_target is not None


class TestTableSteerBlockSweep:
    def test_frame_rate_linear_in_blocks(self, system):
        points = tablesteer_block_sweep(system, block_counts=(32, 64, 128))
        rates = [p.frame_rate for p in points]
        assert rates[1] == pytest.approx(2 * rates[0], rel=0.01)
        assert rates[2] == pytest.approx(4 * rates[0], rel=0.01)

    def test_paper_design_point(self, system):
        points = {int(p.parameters["blocks"]): p
                  for p in tablesteer_block_sweep(system)}
        assert points[128].frame_rate == pytest.approx(20.0, abs=0.5)
        assert points[128].meets_target
        assert points[128].lut_fraction == pytest.approx(1.0, abs=0.05)

    def test_small_block_counts_miss_target(self, system):
        points = tablesteer_block_sweep(system, block_counts=(16, 32))
        assert not any(p.meets_target for p in points)


class TestApertureSweep:
    def test_rows_cover_requested_sides(self, system):
        rows = aperture_sweep(system, sides=(32, 64, 100))
        assert [row["side"] for row in rows] == [32, 64, 100]

    def test_tablefree_cost_grows_quadratically(self, system):
        rows = {row["side"]: row for row in aperture_sweep(system, sides=(32, 64))}
        ratio = rows[64]["tablefree_lut_fraction"] / rows[32]["tablefree_lut_fraction"]
        assert ratio == pytest.approx(4.0, rel=0.1)

    def test_small_aperture_fits_tablefree_large_does_not(self, system):
        rows = {row["side"]: row for row in aperture_sweep(system)}
        assert rows[32]["tablefree_fits"] == 1.0
        assert rows[100]["tablefree_fits"] == 0.0

    def test_delay_rate_scales_with_element_count(self, system):
        rows = {row["side"]: row for row in aperture_sweep(system, sides=(50, 100))}
        assert rows[100]["delay_rate_required"] == pytest.approx(
            4 * rows[50]["delay_rate_required"], rel=0.01)


class TestFindMinimumDesign:
    def test_15fps_needs_about_96_blocks(self, system):
        design = find_minimum_design(system, target_frame_rate=15.0)
        assert design is not None
        assert 90 <= design.parameters["blocks"] <= 100
        assert design.meets_target

    def test_higher_target_needs_more_blocks(self, system):
        low = find_minimum_design(system, target_frame_rate=10.0)
        high = find_minimum_design(system, target_frame_rate=30.0)
        assert high.parameters["blocks"] > low.parameters["blocks"]

    def test_unreachable_target_returns_none(self, system):
        assert find_minimum_design(system, target_frame_rate=1e6,
                                   max_blocks=64) is None
