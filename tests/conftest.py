"""Shared fixtures for the test suite.

Most tests run on the scaled-down ``tiny``/``small`` system presets so the
whole suite stays fast; the algorithms under test are identical to the
paper-scale configuration, only the grid sizes differ.  Session-scoped
fixtures cache the more expensive objects (delay generators, reference
tables) that many test modules share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import paper_system, small_system, tiny_system
from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.core.exact import ExactDelayEngine
from repro.core.tablefree import TableFreeConfig, TableFreeDelayGenerator
from repro.core.tablesteer import TableSteerConfig, TableSteerDelayGenerator
from repro.geometry.transducer import MatrixTransducer
from repro.geometry.volume import FocalGrid


def pytest_configure(config):
    """Register the custom markers (no pytest.ini in this repo)."""
    config.addinivalue_line(
        "markers",
        "conformance: cross-layer backend x batching x scheme conformance "
        "matrix (run alone with '-m conformance', excluded from the fast "
        "CI job with '-m \"not conformance\"')")
    config.addinivalue_line(
        "markers",
        "soak: multi-session server soak benchmark (wall-clock heavy; "
        "run alone with '-m soak' or exclude with '-m \"not soak\"')")


def pytest_addoption(parser):
    """``--regen-golden`` rewrites the checked-in reference volumes.

    Run ``pytest tests/test_golden_volumes.py --regen-golden`` after an
    *intentional* numeric change, review the resulting diff of
    ``tests/golden/`` and commit it together with the change that caused
    it; any unreviewed drift in DAS/kernels/backends fails the suite.
    """
    parser.addoption("--regen-golden", action="store_true", default=False,
                     help="regenerate tests/golden/*.npz reference volumes")


@pytest.fixture(scope="session")
def tiny():
    """The tiny system preset (8x8 elements, 8x8x16 focal points)."""
    return tiny_system()


@pytest.fixture(scope="session")
def small():
    """The small system preset (16x16 elements, 16x16x64 focal points)."""
    return small_system()


@pytest.fixture(scope="session")
def paper():
    """The paper system preset (used only for closed-form / cheap checks)."""
    return paper_system()


@pytest.fixture(scope="session")
def tiny_transducer(tiny):
    """Matrix transducer of the tiny system."""
    return MatrixTransducer.from_config(tiny)


@pytest.fixture(scope="session")
def tiny_grid(tiny):
    """Focal grid of the tiny system."""
    return FocalGrid.from_config(tiny)


@pytest.fixture(scope="session")
def small_transducer(small):
    """Matrix transducer of the small system."""
    return MatrixTransducer.from_config(small)


@pytest.fixture(scope="session")
def small_grid(small):
    """Focal grid of the small system."""
    return FocalGrid.from_config(small)


@pytest.fixture(scope="session")
def tiny_exact(tiny):
    """Exact delay engine for the tiny system."""
    return ExactDelayEngine.from_config(tiny)


@pytest.fixture(scope="session")
def small_exact(small):
    """Exact delay engine for the small system."""
    return ExactDelayEngine.from_config(small)


@pytest.fixture(scope="session")
def tiny_tablefree(tiny):
    """TABLEFREE generator (default design) for the tiny system."""
    return TableFreeDelayGenerator.from_config(tiny, TableFreeConfig())


@pytest.fixture(scope="session")
def small_tablefree(small):
    """TABLEFREE generator (default design) for the small system."""
    return TableFreeDelayGenerator.from_config(small, TableFreeConfig())


@pytest.fixture(scope="session")
def tiny_tablesteer(tiny):
    """TABLESTEER generator (18-bit) for the tiny system."""
    return TableSteerDelayGenerator.from_config(tiny, TableSteerConfig(total_bits=18))


@pytest.fixture(scope="session")
def small_tablesteer(small):
    """TABLESTEER generator (18-bit) for the small system."""
    return TableSteerDelayGenerator.from_config(small, TableSteerConfig(total_bits=18))


@pytest.fixture(scope="session")
def small_tablesteer_float(small):
    """TABLESTEER generator in floating-point (algorithmic-error-only) mode."""
    return TableSteerDelayGenerator.from_config(small, TableSteerConfig(total_bits=None))


@pytest.fixture(scope="session")
def tiny_channel_data(tiny):
    """Synthetic channel data for a centred point target in the tiny system."""
    grid = FocalGrid.from_config(tiny)
    depth = float(grid.depths[len(grid.depths) // 2])
    simulator = EchoSimulator.from_config(tiny)
    return simulator.simulate(point_target(depth=depth))


@pytest.fixture()
def rng():
    """A seeded random generator for per-test randomness."""
    return np.random.default_rng(12345)
