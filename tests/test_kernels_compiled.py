"""Tests for repro.kernels.compiled — the fused Numba-jitted datapath.

The kernel bodies are plain Python functions jitted lazily, so most of
this file runs on numba-free hosts too: it executes the bodies un-jitted
and pins their numerics against the NumPy :class:`BeamformingPlan` on the
tiny preset (64 elements — where the scalar pairwise reduction is
bit-identical to ``np.sum``).  The last class needs a real numba and
covers the jitted :class:`CompiledPlan` end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.architectures import ARCHITECTURES
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.interpolation import InterpolationKind
from repro.kernels import (
    TOLERANCES,
    BackendUnavailable,
    CompiledOptions,
    CompiledPlan,
    Precision,
    compile_plan,
)
from repro.kernels.compiled import (
    _fused_linear_batch,
    _fused_linear_frame,
    _fused_nearest_batch,
    _fused_nearest_frame,
    numba_available,
)

requires_numba = pytest.mark.skipif(
    not numba_available(),
    reason="numba not installed (compiled backend unavailable)")


def _beamformer(system, interpolation=InterpolationKind.NEAREST):
    return DelayAndSumBeamformer(system, ARCHITECTURES.create("exact", system),
                                 interpolation=interpolation)


def _run_frame_body(plan, samples, block_size=1024):
    """Execute the un-jitted frame kernel body over a full plan."""
    samples = np.ascontiguousarray(plan.coerce_samples(samples))
    index = plan.gather_index(samples.shape[-1])
    out = np.empty(plan.n_points, dtype=plan.dtype)
    if plan.interpolation is InterpolationKind.NEAREST:
        _fused_nearest_frame(samples, index.indices, index.valid,
                             plan.weights, out, block_size)
    else:
        _fused_linear_frame(samples, index.lower, index.upper,
                            index.fraction.astype(plan.dtype),
                            index.lower_valid, index.upper_valid,
                            plan.weights, out, block_size)
    return out.reshape(plan.grid_shape)


def _run_batch_body(plan, frames, block_size=1024):
    """Execute the un-jitted batch kernel body over a full plan."""
    stacked = np.ascontiguousarray(
        np.stack([plan.coerce_samples(frame) for frame in frames]))
    index = plan.gather_index(stacked.shape[-1])
    out = np.empty((len(frames), plan.n_points), dtype=plan.dtype)
    if plan.interpolation is InterpolationKind.NEAREST:
        _fused_nearest_batch(stacked, index.indices, index.valid,
                             plan.weights, out, block_size)
    else:
        _fused_linear_batch(stacked, index.lower, index.upper,
                            index.fraction.astype(plan.dtype),
                            index.lower_valid, index.upper_valid,
                            plan.weights, out, block_size)
    return out.reshape((len(frames), *plan.grid_shape))


class TestKernelBodyNumerics:
    """The un-jitted kernel bodies against the NumPy plan (runs anywhere).

    The tiny preset has 64 elements, inside the 128-element window where
    the scalar pairwise reduction reproduces ``np.sum`` *bitwise* — so
    these are exact-equality pins, not tolerance checks.
    """

    @pytest.mark.parametrize("precision", [Precision.FLOAT64,
                                           Precision.FLOAT32])
    @pytest.mark.parametrize("kind", [InterpolationKind.NEAREST,
                                      InterpolationKind.LINEAR])
    def test_frame_body_bit_identical_to_numpy_plan(self, tiny,
                                                    tiny_channel_data,
                                                    kind, precision):
        plan = compile_plan(_beamformer(tiny, kind), precision)
        expected = plan.execute(tiny_channel_data)
        fused = _run_frame_body(plan, tiny_channel_data)
        assert fused.dtype == expected.dtype
        np.testing.assert_array_equal(fused, expected)

    @pytest.mark.parametrize("kind", [InterpolationKind.NEAREST,
                                      InterpolationKind.LINEAR])
    def test_batch_body_bit_identical_to_frame_body(self, tiny,
                                                    tiny_channel_data, kind):
        plan = compile_plan(_beamformer(tiny, kind))
        frame = _run_frame_body(plan, tiny_channel_data)
        batch = _run_batch_body(plan, [tiny_channel_data] * 3)
        assert batch.shape == (3, *frame.shape)
        for i in range(3):
            np.testing.assert_array_equal(batch[i], frame)

    def test_block_size_never_changes_bits(self, tiny, tiny_channel_data):
        """The block decomposition is pure scheduling: any block size must
        produce the same bits (each point's reduction is self-contained)."""
        plan = compile_plan(_beamformer(tiny))
        baseline = _run_frame_body(plan, tiny_channel_data, block_size=1024)
        for block_size in (1, 7, 64):
            np.testing.assert_array_equal(
                _run_frame_body(plan, tiny_channel_data,
                                block_size=block_size), baseline)

    def test_small_element_count_tail_path(self):
        """n_elements < 8 takes the plain sequential branch; pin it against
        a hand-computed masked weighted sum."""
        rng = np.random.default_rng(7)
        n_points, n_elements, n_samples = 5, 3, 11
        samples = rng.normal(size=(n_elements, n_samples))
        indices = rng.integers(0, n_samples, size=(n_points, n_elements))
        valid = rng.random((n_points, n_elements)) > 0.3
        weights = rng.normal(size=(n_points, n_elements))
        out = np.empty(n_points)
        _fused_nearest_frame(samples, indices, valid, weights, out, 2)
        gathered = np.where(
            valid, samples[np.arange(n_elements)[None, :], indices], 0.0)
        np.testing.assert_allclose(out, (weights * gathered).sum(axis=1),
                                   rtol=0, atol=1e-15)

    def test_all_invalid_fetches_give_zero(self):
        samples = np.ones((16, 4))
        indices = np.zeros((3, 16), dtype=np.int64)
        valid = np.zeros((3, 16), dtype=bool)
        weights = np.ones((3, 16))
        out = np.full(3, np.nan)
        _fused_nearest_frame(samples, indices, valid, weights, out, 1024)
        np.testing.assert_array_equal(out, np.zeros(3))

    def test_float32_stays_float32(self):
        """Typed constants keep the arithmetic in the execution dtype — a
        float64 literal would silently promote every product."""
        rng = np.random.default_rng(3)
        samples = rng.normal(size=(16, 8)).astype(np.float32)
        lower = rng.integers(0, 7, size=(4, 16))
        fraction = rng.random((4, 16)).astype(np.float32)
        ones = np.ones((4, 16), dtype=bool)
        weights = rng.normal(size=(4, 16)).astype(np.float32)
        out = np.empty(4, dtype=np.float32)
        _fused_linear_frame(samples, lower, lower + 1, fraction, ones, ones,
                            weights, out, 1024)
        below = samples[np.arange(16)[None, :], lower]
        above = samples[np.arange(16)[None, :], lower + 1]
        expected = (weights.astype(np.float32)
                    * ((np.float32(1.0) - fraction) * below
                       + fraction * above))
        np.testing.assert_allclose(
            out, expected.sum(axis=1, dtype=np.float32), rtol=2e-6, atol=0)


class TestVariantDispatch:
    """compile_plan's variant hook (runs anywhere; availability pinned)."""

    def test_unknown_variant_rejected(self, tiny):
        with pytest.raises(ValueError, match="unknown plan variant"):
            compile_plan(_beamformer(tiny), variant="gpu")

    def test_compiled_variant_requires_numba(self, tiny, monkeypatch):
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        with pytest.raises(BackendUnavailable, match="numba"):
            compile_plan(_beamformer(tiny), variant="compiled")

    def test_quantized_variant_rejected(self, tiny, monkeypatch):
        monkeypatch.setattr("repro.kernels.compiled.NUMBA_AVAILABLE", False)
        beamformer = DelayAndSumBeamformer(
            tiny, ARCHITECTURES.create("exact", tiny), quantization=18)
        with pytest.raises(ValueError, match="quantized"):
            compile_plan(beamformer, variant="compiled")


@requires_numba
class TestCompiledPlanJitted:
    """End-to-end CompiledPlan coverage (numba hosts only)."""

    @pytest.fixture(scope="class")
    def plans(self, tiny):
        from repro.kernels import compile_compiled_plan
        beamformer = _beamformer(tiny)
        return (compile_compiled_plan(beamformer),
                compile_plan(beamformer))

    def test_execute_within_pinned_float64_row(self, plans,
                                               tiny_channel_data):
        compiled, numpy_plan = plans
        expected = numpy_plan.execute(tiny_channel_data)
        volume = compiled.execute(tiny_channel_data)
        assert volume.shape == expected.shape
        assert volume.dtype == expected.dtype
        TOLERANCES[Precision.FLOAT64].assert_allclose(volume, expected)

    def test_execute_rows_matches_execute(self, plans, tiny_channel_data):
        compiled, _ = plans
        full = compiled.execute(tiny_channel_data).reshape(-1)
        rows = slice(3, compiled.n_points - 2)
        np.testing.assert_array_equal(
            compiled.execute_rows(tiny_channel_data, rows), full[rows])

    def test_batch_bit_identical_to_per_frame(self, plans,
                                              tiny_channel_data):
        compiled, _ = plans
        single = compiled.execute(tiny_channel_data)
        batch = compiled.execute_batch([tiny_channel_data] * 2)
        assert batch.shape == (2, *single.shape)
        np.testing.assert_array_equal(batch[0], single)
        np.testing.assert_array_equal(batch[1], single)

    def test_empty_batch(self, plans):
        compiled, _ = plans
        assert compiled.execute_batch([]).shape \
            == (0, *compiled.grid_shape)

    def test_options_respected(self, plans, tiny_channel_data):
        compiled, _ = plans
        baseline = compiled.execute(tiny_channel_data)
        tweaked = compiled.execute(
            tiny_channel_data,
            options=CompiledOptions(threads=1, block_size=16))
        np.testing.assert_array_equal(tweaked, baseline)

    def test_jit_warmup_lands_in_compile_span(self, tiny, tiny_channel_data):
        """Traces attribute JIT warm-up to compile time, and execution runs
        under a single ``fused`` span (no gather/weights/accumulate
        stages — fusing them away is the point)."""
        from repro.observability import Tracer
        from repro.runtime import CompiledBackend
        backend = CompiledBackend(_beamformer(tiny))
        backend.tracer = tracer = Tracer()
        volume = backend.beamform_volume(tiny_channel_data)
        assert isinstance(backend.plan(), CompiledPlan)
        assert volume.shape == backend.plan().grid_shape
        assert tracer.find("compile")
        assert tracer.find("fused")
        for stage in ("gather", "weights", "accumulate"):
            assert not tracer.find(stage)
