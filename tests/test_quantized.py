"""Conformance suite for the bit-true quantized kernel execution path.

The headline pin: a :class:`repro.kernels.QuantizedPlan` must be
*bit-identical* to an oracle that models the paper's fixed-point datapath
directly with :mod:`repro.fixedpoint` arrays (raw integer codes, explicit
per-stage quantisation) — at the paper's bit widths, on the ``small``
preset.  Everything else (backends, batching, sharding, the service, the
reference scanline loop) must then be bit-identical to the plan, which the
rest of this module asserts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.interpolation import InterpolationKind
from repro.fixedpoint.array import FixedPointArray
from repro.fixedpoint.format import QFormat, unsigned
from repro.fixedpoint.quantize import OverflowMode, RoundingMode, from_raw, to_raw
from repro.geometry.volume import FocalGrid
from repro.kernels import (
    Precision,
    QuantizationSpec,
    QuantizedPlan,
    compile_plan,
    compile_quantized_plan,
    parse_qformat,
    plan_key,
    quantized_delay_and_sum,
)
from repro.runtime import BACKENDS, BeamformingService, PlanCache, static_cine


# --------------------------------------------------------------- the oracle
def oracle_volume(channel_data, delays, weights, spec, grid_shape):
    """The paper's fixed-point datapath, written directly on raw codes.

    Independent of :mod:`repro.kernels`: quantisation happens through
    ``to_raw``/``from_raw``/:class:`FixedPointArray`, echo addressing
    through the fixed-point delay's hardware integer rounding
    (:meth:`FixedPointArray.round_to_integer`), gathering through plain
    NumPy indexing.  Every quantised value is an exactly-representable
    dyadic rational, so float64 carries the codes without error and the
    kernel path has no legitimate reason to differ by a single bit.
    """
    samples = np.asarray(channel_data.samples, dtype=np.float64)
    n_samples = samples.shape[-1]
    sample_codes = to_raw(samples, spec.sample_format,
                          rounding=spec.rounding, overflow=spec.overflow)
    samples_q = from_raw(sample_codes, spec.sample_format)

    delay_arr = FixedPointArray.from_float(delays, spec.delay_format,
                                           rounding=spec.rounding,
                                           overflow=spec.overflow)
    indices = delay_arr.round_to_integer()
    valid = (indices >= 0) & (indices < n_samples)
    element = np.broadcast_to(np.arange(delays.shape[1]), delays.shape)
    gathered = samples_q[element, np.clip(indices, 0, n_samples - 1)]
    gathered = np.where(valid, gathered, 0.0)

    weights_q = from_raw(
        to_raw(weights, spec.weight_format, rounding=spec.rounding,
               overflow=spec.overflow), spec.weight_format)
    product_codes = to_raw(gathered * weights_q, spec.accumulator_format,
                           rounding=spec.rounding, overflow=spec.overflow)
    total = from_raw(product_codes, spec.accumulator_format).sum(axis=-1)
    out_codes = to_raw(total, spec.accumulator_format,
                       rounding=spec.rounding, overflow=spec.overflow)
    return from_raw(out_codes, spec.accumulator_format).reshape(grid_shape)


@pytest.fixture(scope="module")
def small_channel_data(small):
    grid = FocalGrid.from_config(small)
    depth = float(grid.depths[len(grid.depths) // 2])
    return EchoSimulator.from_config(small).simulate(point_target(depth=depth))


@pytest.fixture(scope="module")
def tiny_beamformer_q18(tiny, tiny_exact):
    return DelayAndSumBeamformer(tiny, tiny_exact,
                                 quantization=QuantizationSpec.from_total_bits(18))


@pytest.fixture(scope="module")
def tiny_qplan(tiny_beamformer_q18):
    return compile_quantized_plan(tiny_beamformer_q18)


class TestOracleConformance:
    """Acceptance criterion: bit-identical to the fixedpoint oracle."""

    @pytest.mark.parametrize("total_bits", [13, 14, 16])
    def test_bit_identical_on_small_preset(self, small, small_exact,
                                           small_channel_data, total_bits):
        spec = QuantizationSpec.from_total_bits(total_bits)
        beamformer = DelayAndSumBeamformer(small, small_exact,
                                           quantization=spec)
        plan = compile_quantized_plan(beamformer)
        n_elements = small.transducer.element_count
        delays = np.asarray(small_exact.volume_delays_samples(),
                            dtype=np.float64).reshape(-1, n_elements)
        weights = beamformer.volume_weights().reshape(-1, n_elements)
        expected = oracle_volume(small_channel_data, delays, weights, spec,
                                 plan.grid_shape)
        np.testing.assert_array_equal(plan.execute(small_channel_data),
                                      expected)

    def test_oracle_also_matches_other_rounding_and_overflow(
            self, tiny, tiny_exact, tiny_channel_data):
        spec = QuantizationSpec.from_total_bits(
            16, rounding=RoundingMode.NEAREST_EVEN,
            overflow=OverflowMode.SATURATE)
        beamformer = DelayAndSumBeamformer(tiny, tiny_exact,
                                           quantization=spec)
        plan = compile_quantized_plan(beamformer)
        n_elements = tiny.transducer.element_count
        delays = np.asarray(tiny_exact.volume_delays_samples(),
                            dtype=np.float64).reshape(-1, n_elements)
        weights = beamformer.volume_weights().reshape(-1, n_elements)
        expected = oracle_volume(tiny_channel_data, delays, weights, spec,
                                 plan.grid_shape)
        np.testing.assert_array_equal(plan.execute(tiny_channel_data),
                                      expected)


class TestQuantizationSpec:
    def test_parse_qformat_spellings(self):
        assert parse_qformat("U13.5") == unsigned(13, 5)
        assert parse_qformat("S13.4") == QFormat(13, 4, signed=True)
        assert parse_qformat("Q4.14") == QFormat(4, 14, signed=True)
        assert parse_qformat(" u2.6 ") == unsigned(2, 6)
        with pytest.raises(ValueError, match="Q-format"):
            parse_qformat("13.5")
        with pytest.raises(ValueError, match="Q-format"):
            parse_qformat("Ufoo")

    def test_from_total_bits_follows_paper_rule(self):
        spec = QuantizationSpec.from_total_bits(18)
        assert spec.delay_format == unsigned(13, 5)
        assert QuantizationSpec.from_total_bits(13).delay_format == \
            unsigned(13, 0)

    def test_coerce_spellings(self):
        from repro.registry import encode_options
        by_int = QuantizationSpec.coerce(18)
        assert QuantizationSpec.coerce("18") == by_int
        assert QuantizationSpec.coerce("U13.5") == by_int
        assert QuantizationSpec.coerce(by_int) is by_int
        assert QuantizationSpec.coerce(None) is None
        assert QuantizationSpec.coerce(encode_options(by_int)) == by_int
        with pytest.raises(ValueError, match="boolean"):
            QuantizationSpec.coerce(True)
        with pytest.raises(ValueError, match="quantization spec"):
            QuantizationSpec.coerce(3.14)

    def test_describe_names_all_stages(self):
        text = QuantizationSpec.from_total_bits(18).describe()
        for fragment in ("U13.5", "S1.14", "U1.14", "S12.14",
                         "nearest", "saturate"):
            assert fragment in text

    def test_stage_quantisers_idempotent(self, rng):
        spec = QuantizationSpec.from_total_bits(14)
        values = rng.normal(scale=3.0, size=256)
        for stage in (spec.quantize_delays, spec.quantize_samples,
                      spec.quantize_weights, spec.quantize_accumulator):
            once = stage(values)
            np.testing.assert_array_equal(stage(once), once)

    def test_tolerance_is_peak_referenced_bound(self):
        tolerance = QuantizationSpec.from_total_bits(18).tolerance
        assert tolerance.atol > 0
        assert tolerance.rtol == 0.0


class TestQuantizedPlan:
    def test_requires_spec_and_float64(self, tiny_beamformer_q18, tiny_qplan):
        assert isinstance(tiny_qplan, QuantizedPlan)
        assert tiny_qplan.precision is Precision.FLOAT64
        with pytest.raises(ValueError, match="float32"):
            compile_quantized_plan(tiny_beamformer_q18, "float32")
        with pytest.raises(ValueError, match="QuantizationSpec"):
            compile_quantized_plan(
                DelayAndSumBeamformer(tiny_beamformer_q18.system,
                                      tiny_beamformer_q18.delays))

    def test_compile_plan_dispatches_to_quantized(self, tiny_beamformer_q18):
        plan = compile_plan(tiny_beamformer_q18)
        assert isinstance(plan, QuantizedPlan)
        assert plan.key == plan_key(tiny_beamformer_q18)

    def test_delays_and_weights_are_quantised_at_compile_time(
            self, tiny_beamformer_q18, tiny_qplan):
        spec = tiny_qplan.spec
        np.testing.assert_array_equal(spec.quantize_delays(tiny_qplan.delays),
                                      tiny_qplan.delays)
        np.testing.assert_array_equal(
            spec.quantize_weights(tiny_qplan.weights), tiny_qplan.weights)

    def test_linear_interpolation_rejected(self, tiny, tiny_exact):
        with pytest.raises(ValueError, match="nearest"):
            DelayAndSumBeamformer(tiny, tiny_exact,
                                  interpolation=InterpolationKind.LINEAR,
                                  quantization=18)
        with pytest.raises(ValueError, match="nearest"):
            quantized_delay_and_sum(np.zeros((2, 8)), np.zeros((3, 2)),
                                    np.ones((3, 2)),
                                    QuantizationSpec.from_total_bits(14),
                                    kind="linear")

    def test_float32_beamformer_rejected(self, tiny, tiny_exact):
        with pytest.raises(ValueError, match="float64"):
            DelayAndSumBeamformer(tiny, tiny_exact, precision="float32",
                                  quantization=18)

    def test_float32_reference_backend_rejected(self, tiny_beamformer_q18):
        """The plan-less reference loop must refuse float32 too — its
        output array would silently truncate the exact fixed-point codes."""
        for backend in ("reference", "vectorized", "sharded"):
            with pytest.raises(ValueError, match="float64"):
                BACKENDS.create(backend, tiny_beamformer_q18, None,
                                "float32")

    def test_delay_format_too_narrow_for_buffer_rejected(self, tiny,
                                                         tiny_exact):
        """A delay format that saturates below the echo-buffer length would
        produce a structurally valid but meaningless volume; it must fail
        loudly — at the beamformer, the spec and the compile entry points."""
        with pytest.raises(ValueError, match="echo buffer"):
            DelayAndSumBeamformer(tiny, tiny_exact, quantization="Q4.14")
        from repro.api import EngineSpec
        with pytest.raises(ValueError, match="echo buffer"):
            EngineSpec(system="tiny", quantization="Q4.14")
        narrow = QuantizationSpec(delay_format=QFormat(4, 14, signed=True))
        with pytest.raises(ValueError, match="echo buffer"):
            compile_quantized_plan(DelayAndSumBeamformer(tiny, tiny_exact),
                                   spec=narrow)

    def test_coerce_samples_is_idempotent_quantisation(self, tiny_qplan,
                                                       tiny_channel_data):
        once = tiny_qplan.coerce_samples(tiny_channel_data)
        np.testing.assert_array_equal(tiny_qplan.coerce_samples(once), once)
        np.testing.assert_array_equal(
            tiny_qplan.execute(once), tiny_qplan.execute(tiny_channel_data))

    def test_rows_and_batch_bit_identical_to_execute(self, tiny_qplan,
                                                     tiny_channel_data):
        full = tiny_qplan.execute(tiny_channel_data)
        parts = [tiny_qplan.execute_rows(tiny_channel_data, slice(lo, lo + 37))
                 for lo in range(0, tiny_qplan.n_points, 37)]
        np.testing.assert_array_equal(np.concatenate(parts), full.ravel())
        batch = tiny_qplan.execute_batch([tiny_channel_data,
                                          tiny_channel_data])
        np.testing.assert_array_equal(batch[0], full)
        np.testing.assert_array_equal(batch[1], full)

    def test_scanline_loop_bit_identical_to_plan(self, tiny_beamformer_q18,
                                                 tiny_qplan,
                                                 tiny_channel_data):
        volume = tiny_qplan.execute(tiny_channel_data)
        n_theta, n_phi, _ = tiny_qplan.grid_shape
        for i_theta in range(0, n_theta, 3):
            for i_phi in range(0, n_phi, 3):
                np.testing.assert_array_equal(
                    volume[i_theta, i_phi],
                    tiny_beamformer_q18.beamform_scanline(
                        tiny_channel_data, i_theta, i_phi))

    def test_quantized_volume_close_but_not_equal_to_float(
            self, tiny, tiny_exact, tiny_qplan, tiny_channel_data):
        reference = compile_plan(
            DelayAndSumBeamformer(tiny, tiny_exact)).execute(
                tiny_channel_data)
        quantized = tiny_qplan.execute(tiny_channel_data)
        assert not np.array_equal(quantized, reference)
        tiny_qplan.spec.tolerance.assert_allclose(quantized, reference)


class TestQuantizedBackends:
    @pytest.mark.parametrize("backend", ["reference", "vectorized",
                                         "sharded"])
    def test_backends_bit_identical_to_plan(self, tiny_beamformer_q18,
                                            tiny_qplan, tiny_channel_data,
                                            backend):
        instance = BACKENDS.create(backend, tiny_beamformer_q18, None, None)
        volume = instance.beamform_volume(tiny_channel_data)
        assert volume.dtype == np.float64
        np.testing.assert_array_equal(volume,
                                      tiny_qplan.execute(tiny_channel_data))
        batch = instance.beamform_batch([tiny_channel_data])
        np.testing.assert_array_equal(batch[0], volume)

    def test_service_streams_quantized(self, tiny, tiny_channel_data):
        service = BeamformingService(tiny, architecture="exact",
                                     backend="vectorized", quantization=18,
                                     cache=PlanCache())
        results = service.stream_all(static_cine(tiny_channel_data, 4),
                                     batch_size=2)
        assert len(results) == 4
        np.testing.assert_array_equal(results[0].rf, results[3].rf)
        stats = service.stats()
        assert stats.quantization is not None and "U13.5" in stats.quantization
        assert stats.cache.misses == 1     # one quantized plan, reused

    def test_session_quantization_none_disables_spec_default(self, tiny):
        """Session overrides: omitting quantization inherits the spec's;
        passing None explicitly yields the float variant of the same
        engine (the float-vs-quantized comparison must be possible)."""
        from repro.api import EngineSpec, ScanSpec, Session
        session = Session(EngineSpec(system="tiny", backend="vectorized",
                                     quantization=18))
        inherited = session.service()
        disabled = session.service(quantization=None)
        assert inherited.quantization is not None
        assert disabled.quantization is None
        scan = ScanSpec(scenario="static_point", frames=1)
        frames = scan.build_frames(session.system)
        quantized_rf = inherited.submit_frame(frames[0]).rf
        float_rf = disabled.submit_frame(frames[0]).rf
        assert not np.array_equal(quantized_rf, float_rf)
        assert session.pipeline(quantization=None).quantization is None

    def test_kernel_sweep_reproduces_monte_carlo_trends(self, tiny):
        """E6-through-the-kernels must match the fixed_point_sweep story."""
        from repro.analysis.fixedpoint_impact import (
            fixed_point_sweep,
            kernel_fixed_point_sweep,
        )
        widths = (13, 14, 16, 18, 20)
        kernel = kernel_fixed_point_sweep(tiny, bit_widths=widths)
        monte_carlo = fixed_point_sweep(bit_widths=widths, n_samples=50_000)
        for kr, mc in zip(kernel, monte_carlo):
            assert kr.total_bits == mc.total_bits
            # Same index-error envelope (including the 14-bit outlier whose
            # corrections lose their fraction bits) ...
            assert kr.max_index_error <= mc.max_index_error + 1
        by_bits = {r.total_bits: r for r in kernel}
        # ... and the same coarse error trend: plain integers shift tens of
        # percent of the gather indices, 18+ bits almost none.
        assert by_bits[13].affected_fraction > 0.1
        assert by_bits[18].affected_fraction < 0.05
        assert by_bits[20].affected_fraction < by_bits[16].affected_fraction \
            < by_bits[13].affected_fraction
        assert by_bits[20].volume_rms_error < by_bits[13].volume_rms_error
        assert all(r.volume_rms_error < 0.1 for r in kernel)
