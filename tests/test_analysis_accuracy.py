"""Tests for repro.analysis.accuracy: selection-error statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import (
    AccuracyReport,
    ErrorStats,
    delay_errors_samples,
    directivity_mask,
    error_map_by_region,
    evaluate_provider,
    sample_volume_points,
    selection_errors,
)
from repro.geometry.coordinates import cartesian_to_spherical


class TestErrorStats:
    def test_basic_statistics(self):
        stats = ErrorStats.from_errors(np.array([0.0, 1.0, -1.0, 2.0]))
        assert stats.count == 4
        assert stats.mean_abs == pytest.approx(1.0)
        assert stats.max_abs == pytest.approx(2.0)
        assert stats.rms == pytest.approx(np.sqrt(6 / 4))
        assert stats.fraction_nonzero == pytest.approx(0.75)
        assert stats.fraction_above_one == pytest.approx(0.25)

    def test_all_zero_errors(self):
        stats = ErrorStats.from_errors(np.zeros(10))
        assert stats.mean_abs == 0.0
        assert stats.fraction_nonzero == 0.0

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            ErrorStats.from_errors(np.array([]))

    def test_as_dict_roundtrip(self):
        stats = ErrorStats.from_errors(np.array([1.0, -2.0]))
        d = stats.as_dict()
        assert d["max_abs"] == 2.0
        assert d["count"] == 2.0

    def test_percentiles_ordered(self, rng):
        stats = ErrorStats.from_errors(rng.normal(size=1000))
        assert stats.p95_abs <= stats.p99_abs <= stats.max_abs


class TestSampling:
    def test_sample_points_inside_volume(self, small):
        points = sample_volume_points(small, max_points=200, seed=1)
        theta, phi, r = cartesian_to_spherical(points)
        assert np.all(np.abs(theta) <= small.volume.theta_max + 1e-9)
        assert np.all(np.abs(phi) <= small.volume.phi_max + 1e-9)
        assert np.all(r <= small.volume.depth_max + 1e-9)
        assert np.all(r >= small.volume.depth_min - 1e-9)

    def test_sample_is_deterministic(self, small):
        a = sample_volume_points(small, max_points=50, seed=7)
        b = sample_volume_points(small, max_points=50, seed=7)
        np.testing.assert_allclose(a, b)

    def test_extremes_included(self, small):
        points = sample_volume_points(small, max_points=10, seed=7,
                                      include_extremes=True)
        _theta, _phi, r = cartesian_to_spherical(points)
        assert np.any(np.isclose(r, small.volume.depth_max, rtol=1e-9))
        assert np.any(np.isclose(r, small.volume.depth_min, rtol=1e-9))

    def test_extremes_can_be_excluded(self, small):
        points = sample_volume_points(small, max_points=10, seed=7,
                                      include_extremes=False)
        assert len(points) == 10


class TestSelectionErrors:
    def test_exact_vs_itself_is_zero(self, small, small_exact):
        points = sample_volume_points(small, max_points=30, seed=2)
        errors = selection_errors(small_exact, small_exact, points)
        np.testing.assert_allclose(errors, 0.0)

    def test_shape(self, small, small_exact, small_tablefree):
        points = sample_volume_points(small, max_points=25, seed=3)
        errors = selection_errors(small_tablefree, small_exact, points)
        assert errors.shape == (len(points), small.transducer.element_count)

    def test_delay_errors_close_to_selection_errors(self, small, small_exact,
                                                    small_tablefree):
        points = sample_volume_points(small, max_points=25, seed=4)
        continuous = delay_errors_samples(small_tablefree, small_exact, points)
        discrete = selection_errors(small_tablefree, small_exact, points)
        # Rounding can change each error by at most 1 sample.
        assert np.max(np.abs(continuous - discrete)) <= 1.0 + 1e-9


class TestDirectivityMask:
    def test_mask_shape_and_type(self, small, small_exact):
        points = sample_volume_points(small, max_points=20, seed=5)
        mask = directivity_mask(small_exact, points)
        assert mask.shape == (len(points), small.transducer.element_count)
        assert mask.dtype == bool

    def test_on_axis_point_visible_to_all(self, small_exact):
        point = np.array([[0.0, 0.0, 0.02]])
        mask = directivity_mask(small_exact, point)
        assert np.all(mask)

    def test_steep_point_masked_for_far_elements(self, small_exact):
        # Point essentially beside the aperture: outside every element's cone.
        point = np.array([[0.5, 0.0, 1e-4]])
        mask = directivity_mask(small_exact, point)
        assert not np.any(mask)


class TestEvaluateProvider:
    def test_report_structure(self, small, small_tablefree):
        report = evaluate_provider(small_tablefree, small, "TABLEFREE",
                                   max_points=60)
        assert isinstance(report, AccuracyReport)
        assert report.architecture == "TABLEFREE"
        d = report.as_dict()
        assert "all_points" in d and "within_directivity" in d

    def test_directivity_subset_not_worse_for_tablesteer(self, small,
                                                         small_tablesteer_float):
        """Masking to the directivity cone cannot increase the maximum error
        (the paper's argument for why the worst errors are harmless)."""
        report = evaluate_provider(small_tablesteer_float, small,
                                   "TABLESTEER", max_points=200, seed=11)
        assert report.within_directivity.max_abs <= report.all_points.max_abs

    def test_seconds_and_samples_consistent(self, small, small_tablefree):
        report = evaluate_provider(small_tablefree, small, "x", max_points=40)
        fs = small.acoustic.sampling_frequency
        assert report.delay_error_seconds_max * fs >= \
            report.delay_error_seconds_mean * fs


class TestErrorMap:
    def test_map_shape_and_monotonicity(self, small, small_tablesteer_float):
        result = error_map_by_region(small_tablesteer_float, small,
                                     n_theta_bins=5, n_depth_bins=4)
        error = result["mean_abs_error"]
        assert error.shape == (5, 4)
        # Errors at the steering extremes exceed errors at broadside.
        broadside = error[2, :].mean()
        edge = error[[0, -1], :].mean()
        assert edge >= broadside

    def test_exact_provider_gives_zero_map(self, small, small_exact):
        result = error_map_by_region(small_exact, small, n_theta_bins=3,
                                     n_depth_bins=3)
        np.testing.assert_allclose(result["mean_abs_error"], 0.0)
