"""Tests for repro.beamformer.das: the delay-and-sum core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.echo import ChannelData, EchoSimulator
from repro.acoustics.phantom import point_target
from repro.beamformer.das import ApodizationSettings, DelayAndSumBeamformer, DelayProvider
from repro.core.exact import ExactDelayEngine
from repro.geometry.apodization import WindowType


@pytest.fixture(scope="module")
def tiny_setup():
    from repro.config import tiny_system
    system = tiny_system()
    exact = ExactDelayEngine.from_config(system)
    depth = float(exact.grid.depths[len(exact.grid.depths) // 2])
    channel_data = EchoSimulator.from_config(system).simulate(
        point_target(depth=depth))
    beamformer = DelayAndSumBeamformer(system, exact)
    return system, exact, beamformer, channel_data, depth


class TestProtocol:
    def test_all_generators_satisfy_delay_provider(self, tiny_exact,
                                                   tiny_tablefree,
                                                   tiny_tablesteer):
        assert isinstance(tiny_exact, DelayProvider)
        assert isinstance(tiny_tablefree, DelayProvider)
        assert isinstance(tiny_tablesteer, DelayProvider)


class TestWeights:
    def test_scanline_weights_cached_and_correct(self, tiny_setup):
        system, exact, _beamformer, _data, _depth = tiny_setup
        beamformer = DelayAndSumBeamformer(system, exact)
        assert not beamformer._scanline_weights
        first = beamformer.weights_for_scanline(1, 2)
        np.testing.assert_array_equal(
            first, beamformer.weights_for_points(
                exact.grid.scanline_points(1, 2)))
        # The second call must hand back the very same cached array.
        assert beamformer.weights_for_scanline(1, 2) is first
        assert set(beamformer._scanline_weights) == {(1, 2)}

    def test_beamform_scanline_populates_weight_cache(self, tiny_setup):
        system, exact, _beamformer, data, _depth = tiny_setup
        beamformer = DelayAndSumBeamformer(system, exact)
        beamformer.beamform_scanline(data, 0, 3)
        beamformer.beamform_scanline(data, 0, 3)
        assert set(beamformer._scanline_weights) == {(0, 3)}

    def test_volume_weights_match_scanline_weights(self, tiny_setup):
        system, exact, beamformer, _data, _depth = tiny_setup
        volume = beamformer.volume_weights()
        n_theta, n_phi, n_depth = beamformer.grid.shape
        assert volume.shape == (n_theta, n_phi, n_depth,
                                system.transducer.element_count)
        np.testing.assert_array_equal(volume[3, 1],
                                      beamformer.weights_for_scanline(3, 1))

    def test_weights_shape(self, tiny_setup):
        system, exact, beamformer, _data, _depth = tiny_setup
        points = exact.grid.scanline_points(0, 0)[:7]
        weights = beamformer.weights_for_points(points)
        assert weights.shape == (7, system.transducer.element_count)

    def test_weights_nonnegative_and_bounded(self, tiny_setup):
        _system, exact, beamformer, _data, _depth = tiny_setup
        points = exact.grid.scanline_points(2, 2)
        weights = beamformer.weights_for_points(points)
        assert np.all(weights >= 0)
        assert np.all(weights <= 1.0 + 1e-12)

    def test_directivity_disabled_keeps_aperture_only(self, tiny_setup):
        system, exact, _beamformer, _data, _depth = tiny_setup
        no_directivity = DelayAndSumBeamformer(
            system, exact,
            ApodizationSettings(window=WindowType.HANN, use_directivity=False))
        points = exact.grid.scanline_points(0, 0)[:3]
        weights = no_directivity.weights_for_points(points)
        # Without directivity every point gets identical aperture weights.
        np.testing.assert_allclose(weights[0], weights[1])
        np.testing.assert_allclose(weights[0], weights[2])

    def test_rectangular_window_gives_unit_weights(self, tiny_setup):
        system, exact, _beamformer, _data, _depth = tiny_setup
        uniform = DelayAndSumBeamformer(
            system, exact,
            ApodizationSettings(window=WindowType.RECTANGULAR,
                                use_directivity=False))
        point = np.array([[0.0, 0.0, 0.01]])
        np.testing.assert_allclose(uniform.weights_for_points(point), 1.0)


class TestBeamforming:
    def test_peak_at_target_depth(self, tiny_setup):
        """The beamformed scanline through the target peaks at the target."""
        system, exact, beamformer, channel_data, depth = tiny_setup
        # Broadside-most scanline (grid has no exact theta=0 for even counts).
        i_theta = system.volume.n_theta // 2
        i_phi = system.volume.n_phi // 2
        rf = beamformer.beamform_scanline(channel_data, i_theta, i_phi)
        peak_depth = exact.grid.depths[int(np.argmax(np.abs(rf)))]
        assert abs(peak_depth - depth) < 3 * (exact.grid.depths[1]
                                              - exact.grid.depths[0])

    def test_beamform_points_matches_scanline(self, tiny_setup):
        _system, exact, beamformer, channel_data, _depth = tiny_setup
        i_theta, i_phi = 3, 2
        scanline_rf = beamformer.beamform_scanline(channel_data, i_theta, i_phi)
        points_rf = beamformer.beamform_points(
            channel_data, exact.grid.scanline_points(i_theta, i_phi))
        np.testing.assert_allclose(points_rf, scanline_rf)

    def test_beamform_nappe_matches_pointwise(self, tiny_setup):
        _system, exact, beamformer, channel_data, _depth = tiny_setup
        i_depth = len(exact.grid.depths) // 2
        nappe_rf = beamformer.beamform_nappe(channel_data, i_depth)
        assert nappe_rf.shape == (len(exact.grid.thetas), len(exact.grid.phis))
        # Spot-check one (theta, phi) against the point API.
        point = exact.grid.point(1, 2, i_depth).reshape(1, 3)
        single = beamformer.beamform_points(channel_data, point)[0]
        assert nappe_rf[1, 2] == pytest.approx(single)

    def test_silence_in_gives_zero_out(self, tiny_setup):
        system, exact, beamformer, _data, _depth = tiny_setup
        silent = ChannelData(
            samples=np.zeros((system.transducer.element_count,
                              system.echo_buffer_samples)),
            sampling_frequency=system.acoustic.sampling_frequency)
        rf = beamformer.beamform_scanline(silent, 0, 0)
        np.testing.assert_allclose(rf, 0.0)

    def test_linear_in_channel_data(self, tiny_setup):
        _system, exact, beamformer, channel_data, _depth = tiny_setup
        doubled = ChannelData(samples=2.0 * channel_data.samples,
                              sampling_frequency=channel_data.sampling_frequency)
        rf = beamformer.beamform_scanline(channel_data, 4, 4)
        rf_doubled = beamformer.beamform_scanline(doubled, 4, 4)
        np.testing.assert_allclose(rf_doubled, 2.0 * rf, atol=1e-12)

    def test_coherent_gain_exceeds_single_element(self, tiny_setup):
        """Summing in phase across elements must beat any single element's
        amplitude at the focus — the whole point of beamforming."""
        system, exact, beamformer, channel_data, depth = tiny_setup
        i_theta = system.volume.n_theta // 2
        i_phi = system.volume.n_phi // 2
        rf = beamformer.beamform_scanline(channel_data, i_theta, i_phi)
        focus_amplitude = np.max(np.abs(rf))
        best_single = np.max(np.abs(channel_data.samples))
        assert focus_amplitude > 2.0 * best_single
