"""Property-based tests (hypothesis) for the delay engines' invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_system
from repro.core.exact import ExactDelayEngine, propagation_delay
from repro.core.steering import correction_plane
from repro.core.tablesteer import farfield_error_seconds
from repro.geometry.coordinates import spherical_to_cartesian

SYSTEM = tiny_system()
EXACT = ExactDelayEngine.from_config(SYSTEM)

point_strategy = st.tuples(
    st.floats(min_value=-float(SYSTEM.volume.theta_max),
              max_value=float(SYSTEM.volume.theta_max), allow_nan=False),
    st.floats(min_value=-float(SYSTEM.volume.phi_max),
              max_value=float(SYSTEM.volume.phi_max), allow_nan=False),
    st.floats(min_value=float(SYSTEM.volume.depth_min),
              max_value=float(SYSTEM.volume.depth_max), allow_nan=False),
)


class TestExactDelayInvariants:
    @given(spherical=point_strategy)
    @settings(max_examples=200, deadline=None)
    def test_delays_positive_and_bounded(self, spherical):
        theta, phi, r = spherical
        point = spherical_to_cartesian(theta, phi, r).reshape(1, 3)
        delays = EXACT.delays_samples(point)
        assert np.all(delays > 0)
        assert np.all(delays <= EXACT.max_delay_samples() + 1e-6)

    @given(spherical=point_strategy)
    @settings(max_examples=200, deadline=None)
    def test_triangle_inequality_lower_bound(self, spherical):
        """Every two-way delay is at least 2 * r / c (down and straight back
        is the shortest possible path via the origin element region)."""
        theta, phi, r = spherical
        point = spherical_to_cartesian(theta, phi, r).reshape(1, 3)
        delays_seconds = EXACT.delays_seconds(point)
        shortest_possible = (r + np.min(np.linalg.norm(
            EXACT.transducer.positions - point[0][None, :], axis=1))) \
            / SYSTEM.acoustic.speed_of_sound
        assert np.min(delays_seconds) >= shortest_possible - 1e-15

    @given(spherical=point_strategy,
           scale=st.floats(min_value=1.05, max_value=3.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_deeper_point_on_same_ray_has_larger_delays(self, spherical, scale):
        theta, phi, r = spherical
        r_far = min(r * scale, float(SYSTEM.volume.depth_max) * 3)
        near = spherical_to_cartesian(theta, phi, r).reshape(1, 3)
        far = spherical_to_cartesian(theta, phi, r_far).reshape(1, 3)
        # Transmit leg strictly grows; the receive leg can only grow when the
        # point moves radially away from the aperture plane, so the total
        # two-way delay must grow for every element.
        assert np.all(EXACT.delays_samples(far) >= EXACT.delays_samples(near) - 1e-9)

    @given(spherical=point_strategy)
    @settings(max_examples=150, deadline=None)
    def test_mirror_symmetry_in_x(self, spherical):
        """Mirroring the focal point in x permutes element delays by the
        corresponding element mirror — the multiset of delays is unchanged."""
        theta, phi, r = spherical
        point = spherical_to_cartesian(theta, phi, r).reshape(1, 3)
        mirrored = point * np.array([[-1.0, 1.0, 1.0]])
        original = np.sort(EXACT.delays_samples(point).ravel())
        reflected = np.sort(EXACT.delays_samples(mirrored).ravel())
        np.testing.assert_allclose(original, reflected, rtol=1e-12)

    @given(spherical=point_strategy,
           c=st.floats(min_value=1000.0, max_value=2000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_delay_inversely_proportional_to_speed(self, spherical, c):
        theta, phi, r = spherical
        point = spherical_to_cartesian(theta, phi, r).reshape(1, 3)
        elements = EXACT.transducer.positions[:8]
        base = propagation_delay(np.zeros(3), point, elements, 1540.0)
        scaled = propagation_delay(np.zeros(3), point, elements, c)
        np.testing.assert_allclose(scaled, base * 1540.0 / c, rtol=1e-12)


class TestSteeringInvariants:
    @given(theta=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
           phi=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_correction_plane_antisymmetric_under_angle_negation(self, theta, phi):
        x = EXACT.transducer.x
        y = EXACT.transducer.y
        c = SYSTEM.acoustic.speed_of_sound
        plane = correction_plane(x, y, theta, phi, c)
        negated = correction_plane(x, y, -theta, -phi, c)
        # Negating both angles negates the steering projection element-wise:
        # plane(theta, phi) == -plane(-theta, -phi).
        np.testing.assert_allclose(plane, -negated, atol=1e-18)

    @given(theta=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
           phi=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
           r=st.floats(min_value=float(SYSTEM.volume.depth_min),
                       max_value=float(SYSTEM.volume.depth_max),
                       allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_farfield_error_vanishes_at_broadside_center(self, theta, phi, r):
        """The far-field error for the centre-most elements is much smaller
        than for the aperture corners (it scales with xD, yD)."""
        x = EXACT.transducer.x
        y = EXACT.transducer.y
        error = np.abs(farfield_error_seconds(theta, phi, r, x, y,
                                              SYSTEM.acoustic.speed_of_sound))
        ex, ey = error.shape
        centre = error[ex // 2 - 1: ex // 2 + 1, ey // 2 - 1: ey // 2 + 1].max()
        corners = max(error[0, 0], error[0, -1], error[-1, 0], error[-1, -1])
        assert centre <= corners + 1e-15

    @given(theta=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
           phi=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
           r=st.floats(min_value=float(SYSTEM.volume.depth_min),
                       max_value=float(SYSTEM.volume.depth_max),
                       allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_farfield_error_symmetric_under_angle_negation(self, theta, phi, r):
        """Negating both steering angles mirrors the error pattern over the
        aperture: error(theta, phi)[i, j] == error(-theta, -phi)[~i, ~j]."""
        error = farfield_error_seconds(theta, phi, r, EXACT.transducer.x,
                                       EXACT.transducer.y,
                                       SYSTEM.acoustic.speed_of_sound)
        negated = farfield_error_seconds(-theta, -phi, r, EXACT.transducer.x,
                                         EXACT.transducer.y,
                                         SYSTEM.acoustic.speed_of_sound)
        np.testing.assert_allclose(error, negated[::-1, ::-1], atol=1e-15)
