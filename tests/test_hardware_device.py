"""Tests for repro.hardware.device: FPGA capacity descriptions."""

from __future__ import annotations

import pytest

from repro.hardware.device import (
    FpgaDevice,
    virtex7_xc7vx1140t,
    virtex_ultrascale_projection,
)


class TestVirtex7:
    def test_capacities_match_datasheet_scale(self):
        device = virtex7_xc7vx1140t()
        assert device.luts == 712_000
        assert device.registers == 1_424_000
        assert device.bram_megabits == pytest.approx(67.7, rel=0.01)
        assert device.dsp_slices == 3360

    def test_bram_blocks(self):
        assert virtex7_xc7vx1140t().bram_blocks == 1880

    def test_name(self):
        assert "1140T" in virtex7_xc7vx1140t().name


class TestUltraScaleProjection:
    def test_doubles_lut_count(self):
        v7 = virtex7_xc7vx1140t()
        us = virtex_ultrascale_projection()
        assert us.luts == 2 * v7.luts
        assert us.registers == 2 * v7.registers

    def test_higher_clock_ceiling(self):
        assert virtex_ultrascale_projection().max_clock_hz > \
            virtex7_xc7vx1140t().max_clock_hz


class TestUtilization:
    def test_fraction_computation(self):
        device = FpgaDevice(name="x", luts=1000, registers=2000, bram_bits=100,
                            bram_blocks=10, dsp_slices=4, max_clock_hz=1e8)
        used = device.utilization(luts=500, registers=500, bram_bits=50,
                                  dsp_slices=1)
        assert used["luts"] == pytest.approx(0.5)
        assert used["registers"] == pytest.approx(0.25)
        assert used["bram"] == pytest.approx(0.5)
        assert used["dsp"] == pytest.approx(0.25)

    def test_zero_dsp_device(self):
        device = FpgaDevice(name="x", luts=10, registers=10, bram_bits=10,
                            bram_blocks=1, dsp_slices=0, max_clock_hz=1e8)
        assert device.utilization(dsp_slices=0)["dsp"] == 0.0

    def test_fits_true_and_false(self):
        device = virtex7_xc7vx1140t()
        assert device.fits(luts=device.luts, registers=0, bram_bits=0)
        assert not device.fits(luts=device.luts + 1)
        assert not device.fits(bram_bits=device.bram_bits * 2)
