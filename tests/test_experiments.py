"""Tests for the experiment harness: every experiment runs and its headline
figures land in the paper's neighbourhood (shape reproduction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import small_system, tiny_system
from repro.experiments import (
    ALL_EXPERIMENTS,
    e01_requirements,
    e02_traversal,
    e03_piecewise,
    e04_tablefree_accuracy,
    e05_tablesteer_accuracy,
    e06_fixedpoint,
    e07_storage,
    e08_table2,
    e09_throughput,
    e10_imaging,
    e11_runtime_throughput,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 11
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 12)}

    def test_every_experiment_has_run_and_main(self):
        for module in ALL_EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.main)


class TestE1Requirements:
    def test_headline_numbers(self):
        result = e01_requirements.run()
        req = result["requirements"]
        assert req["naive_coefficients"] == pytest.approx(1.64e11, rel=0.01)
        assert req["required_delay_rate_per_second"] == pytest.approx(2.46e12,
                                                                      rel=0.01)
        assert req["symmetric_table_entries"] == pytest.approx(2.5e6)
        assert req["correction_values"] == pytest.approx(832e3)

    def test_paper_reference_attached(self):
        assert "paper_reference" in e01_requirements.run()


class TestE2Traversal:
    def test_equivalence_and_reuse(self):
        result = e02_traversal.run(tiny_system())
        assert result["orders_visit_same_points"]
        assert result["nappe"]["slice_reuse_factor"] > \
            result["scanline"]["slice_reuse_factor"]


class TestE3Piecewise:
    def test_segment_count_near_70_for_paper_range(self):
        result = e03_piecewise.run()
        assert 55 <= result["segment_count"] <= 85
        assert result["max_abs_error_samples"] <= 0.2501

    def test_delta_sweep_monotone(self):
        result = e03_piecewise.run()
        sweep = result["segments_vs_delta"]
        assert sweep[0.125] > sweep[0.25] > sweep[0.5]

    def test_segment_tracking_cheap(self):
        result = e03_piecewise.run()
        assert result["segment_tracking"]["mean_steps"] < 1.0


class TestE4TableFree:
    @pytest.fixture(scope="class")
    def result(self):
        return e04_tablefree_accuracy.run(small_system(), max_points=200)

    def test_fixed_point_error_shape(self, result):
        stats = result["fixed_point"]["all_points"]
        assert stats["mean_abs"] < 0.45          # paper: ~0.25
        assert stats["max_abs"] <= 2.0           # paper: 2

    def test_float_error_bounded_by_two_delta(self, result):
        stats = result["float"]["all_points"]
        assert stats["max_abs"] <= 1.0

    def test_delta_sweep_improves_accuracy(self, result):
        sweep = result["delta_sweep"]
        assert sweep[0.125]["mean_abs"] < sweep[0.5]["mean_abs"]


class TestE5TableSteer:
    @pytest.fixture(scope="class")
    def result(self):
        return e05_tablesteer_accuracy.run(small_system(), max_points=200)

    def test_bound_exceeds_observations(self, result):
        bounds = result["bounds"]
        assert bounds["lagrange_bound_samples"] >= \
            bounds["observed_max_samples_all"] * 0.9

    def test_directivity_filtering_reduces_worst_case(self, result):
        bounds = result["bounds"]
        assert bounds["observed_max_samples_within_directivity"] <= \
            bounds["observed_max_samples_all"]

    def test_mean_error_of_order_a_sample(self, result):
        assert result["float"]["all_points"]["mean_abs"] < 5.0

    def test_fixed_point_variants_present(self, result):
        for key in ("fixed_13b", "fixed_14b", "fixed_18b"):
            assert key in result


class TestE6FixedPoint:
    def test_paper_fractions(self):
        result = e06_fixedpoint.run(n_samples=200_000)
        assert result["bits_13"]["affected_fraction"] == pytest.approx(0.33,
                                                                       abs=0.04)
        assert result["bits_18"]["affected_fraction"] < 0.03
        assert result["bits_13"]["max_index_error"] <= 1
        assert result["bits_18"]["max_index_error"] <= 1


class TestE7Storage:
    @pytest.fixture(scope="class")
    def result(self):
        return e07_storage.run()

    def test_reference_table_figures(self, result):
        assert result["analytical"]["reference_entries"] == pytest.approx(2.5e6)
        assert result["per_width"][18]["reference_megabits"] == pytest.approx(45.0)
        assert result["per_width"][18]["dram_bandwidth_gb_per_s"] == \
            pytest.approx(5.4, abs=0.2)
        assert result["per_width"][14]["dram_bandwidth_gb_per_s"] == \
            pytest.approx(4.2, abs=0.2)

    def test_streaming_buffer_never_stalls(self, result):
        assert result["circular_buffer"]["stall_cycles"] == 0

    def test_no_bank_conflicts(self, result):
        assert result["bank_conflicts_window_128"] == 0

    def test_built_tables_for_small_system(self):
        result = e07_storage.run(small_system(), build_tables=True)
        built = result["built"]
        assert built["symmetry_savings"] == pytest.approx(0.75, abs=0.05)
        assert built["reference_entries"] == result["analytical"]["reference_entries"]


class TestE8Table2:
    @pytest.fixture(scope="class")
    def result(self):
        return e08_table2.run()

    def test_three_rows(self, result):
        assert [row["architecture"] for row in result["rows"]] == \
            ["TABLEFREE", "TABLESTEER-14b", "TABLESTEER-18b"]

    def test_who_wins(self, result):
        rows = {row["architecture"]: row for row in result["rows"]}
        assert rows["TABLESTEER-18b"]["channels"] == "100x100"
        assert rows["TABLEFREE"]["channels"] == "42x42"
        assert rows["TABLESTEER-18b"]["frame_rate_fps"] > 15
        assert rows["TABLEFREE"]["frame_rate_fps"] < 15
        assert rows["TABLEFREE"]["dram_gb_per_s"] == 0.0

    def test_rows_against_paper_reference(self, result):
        reference = result["paper_reference"]
        for row in result["rows"]:
            expected = reference[row["architecture"]]
            assert row["luts_pct"] == pytest.approx(expected["luts_pct"], abs=5)
            assert row["bram_pct"] == pytest.approx(expected["bram_pct"], abs=5)
            assert row["frame_rate_fps"] == pytest.approx(
                expected["frame_rate_fps"], abs=1.0)

    def test_accuracy_attachment(self):
        result = e08_table2.run(include_accuracy=True,
                                accuracy_system=tiny_system())
        for row in result["rows"]:
            assert row["mean_abs_error_samples"] is not None


class TestE9Throughput:
    def test_plan_storage_mirrors_paper_table_wall(self):
        result = e09_throughput.run()
        storage = result["plan_storage"]
        # ~164 billion entries: the software plan is terabytes at paper
        # scale, reproducing the paper's "tables do not fit" premise.
        assert storage["entries"] == pytest.approx(1.64e11, rel=0.01)
        assert storage["float64_bytes"] > storage["float32_bytes"]
        assert storage["float64_bytes"] > 1e12

    def test_block_structure_and_rates(self):
        result = e09_throughput.run()
        assert result["block"]["adders"] == 136
        assert result["block"]["delays_per_cycle"] == 128
        assert result["block"]["dataflow_matches_direct_sum"]
        assert result["array"]["peak_rate_at_200mhz"] == pytest.approx(3.28e12,
                                                                       rel=0.01)
        assert result["tablesteer_throughput"]["meets_target"]
        assert not result["tablefree_throughput"]["meets_target"]

    def test_real_table_dataflow(self):
        result = e09_throughput.run_with_real_tables(tiny_system())
        assert result["matches_direct"]


class TestE10Imaging:
    @pytest.fixture(scope="class")
    def result(self):
        return e10_imaging.run(tiny_system())

    def test_peak_positions_agree(self, result):
        for comparison in result["comparisons"].values():
            assert comparison["peak_shift_depth"] <= 1
            assert comparison["peak_shift_theta"] <= 1

    def test_images_close_to_exact(self, result):
        for comparison in result["comparisons"].values():
            assert comparison["nrms_vs_exact"] < 0.5

    def test_off_axis_target_still_detected(self):
        result = e10_imaging.run(tiny_system(), target_theta_fraction=0.7)
        exact = result["metrics"]["exact"]
        assert exact["peak_value"] > 0
        for comparison in result["comparisons"].values():
            assert comparison["peak_shift_theta"] <= 2


class TestE11RuntimeThroughput:
    @pytest.fixture(scope="class")
    def result(self):
        return e11_runtime_throughput.run(tiny_system(), n_frames=4, batch=2)

    def test_all_variants_measured(self, result):
        assert set(result["backends"]) \
            == set(e11_runtime_throughput.default_backends())
        for rows in result["backends"].values():
            assert set(rows) == {"float64", "float32"}
            for row in rows.values():
                assert row["frames"] == 4
                assert row["frames_per_second"] > 0
                assert row["voxels_per_second"] > 0
                assert row["batched_frames_per_second"] > 0

    def test_cached_frames_skip_regeneration(self, result):
        for backend in ("vectorized", "sharded"):
            for row in result["backends"][backend].values():
                assert row["cache_misses"] == 1
                assert row["cache_hits"] == 3

    def test_write_bench_json_roundtrips(self, tmp_path):
        import json
        path = tmp_path / "BENCH_runtime.json"
        result = e11_runtime_throughput.write_bench_json(
            path, tiny_system(), n_frames=2, batch=2,
            backends=("vectorized",))
        written = json.loads(path.read_text())
        assert written["backends"].keys() == result["backends"].keys()
        row = written["backends"]["vectorized"]["float32"]
        assert row["frames_per_second"] > 0

    def test_speedup_reported_relative_to_reference(self, result):
        assert result["backends"]["reference"]["float64"][
            "speedup_vs_reference"] == pytest.approx(1.0)

    def test_default_backends_tracks_numba_availability(self):
        from repro.kernels import numba_available
        backends = e11_runtime_throughput.default_backends()
        assert backends[:3] == ("reference", "vectorized", "sharded")
        assert ("compiled" in backends) == numba_available()

    def test_write_bench_json_merges_same_system_rows(self, tmp_path):
        """A partial sweep extends an existing same-system table — the
        numba CI leg's compiled-only rerun must not erase the committed
        NumPy rows or the server_soak section."""
        import json
        path = tmp_path / "BENCH_runtime.json"
        e11_runtime_throughput.write_bench_json(
            path, tiny_system(), n_frames=2, batch=2,
            backends=("vectorized",))
        data = json.loads(path.read_text())
        data["server_soak"] = {"s8w2": {"frames": 16}}
        path.write_text(json.dumps(data))
        merged = e11_runtime_throughput.write_bench_json(
            path, tiny_system(), n_frames=2, batch=2,
            backends=("reference",))
        assert set(merged["backends"]) == {"vectorized", "reference"}
        assert merged["server_soak"] == {"s8w2": {"frames": 16}}
        assert json.loads(path.read_text())["backends"].keys() \
            == merged["backends"].keys()

    def test_write_bench_json_resets_on_system_change(self, tmp_path):
        """Rows from different presets are not comparable: a new system
        replaces the file wholesale instead of mixing rows."""
        import json
        path = tmp_path / "BENCH_runtime.json"
        path.write_text(json.dumps(
            {"system": "small", "backends": {"vectorized": {}}}))
        fresh = e11_runtime_throughput.write_bench_json(
            path, tiny_system(), n_frames=2, batch=2,
            backends=("reference",))
        assert set(fresh["backends"]) == {"reference"}
        assert "server_soak" not in fresh
