"""Property-based tests (hypothesis) for the beamforming and acoustics substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics.echo import ChannelData, EchoSimulator
from repro.acoustics.phantom import Phantom, point_target
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.image import envelope, log_compress, normalized_rms_difference
from repro.beamformer.interpolation import fetch_linear, fetch_nearest
from repro.config import tiny_system
from repro.core.exact import ExactDelayEngine

SYSTEM = tiny_system()
EXACT = ExactDelayEngine.from_config(SYSTEM)
SIMULATOR = EchoSimulator.from_config(SYSTEM)
BEAMFORMER = DelayAndSumBeamformer(SYSTEM, EXACT)

depth_strategy = st.floats(min_value=float(EXACT.grid.depths[2]),
                           max_value=float(EXACT.grid.depths[-3]),
                           allow_nan=False)
amplitude_strategy = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


class TestAcquisitionProperties:
    @given(depth=depth_strategy, amplitude=amplitude_strategy)
    @settings(max_examples=20, deadline=None)
    def test_channel_data_linear_in_amplitude(self, depth, amplitude):
        unit = SIMULATOR.simulate(point_target(depth=depth, amplitude=1.0))
        scaled = SIMULATOR.simulate(point_target(depth=depth, amplitude=amplitude))
        np.testing.assert_allclose(scaled.samples, amplitude * unit.samples,
                                   atol=1e-10)

    @given(depth=depth_strategy)
    @settings(max_examples=20, deadline=None)
    def test_echo_energy_is_finite_and_nonzero(self, depth):
        data = SIMULATOR.simulate(point_target(depth=depth))
        energy = float(np.sum(data.samples ** 2))
        assert np.isfinite(energy)
        assert energy > 0

    @given(depth=depth_strategy, amplitude=amplitude_strategy)
    @settings(max_examples=15, deadline=None)
    def test_beamformed_output_linear_in_scatterer_amplitude(self, depth, amplitude):
        i_mid = SYSTEM.volume.n_theta // 2
        unit = SIMULATOR.simulate(point_target(depth=depth, amplitude=1.0))
        scaled = SIMULATOR.simulate(point_target(depth=depth, amplitude=amplitude))
        rf_unit = BEAMFORMER.beamform_scanline(unit, i_mid, i_mid)
        rf_scaled = BEAMFORMER.beamform_scanline(scaled, i_mid, i_mid)
        np.testing.assert_allclose(rf_scaled, amplitude * rf_unit, atol=1e-9)

    @given(i_depth=st.integers(min_value=2, max_value=SYSTEM.volume.n_depth - 3),
           offset=st.floats(min_value=-0.25, max_value=0.25, allow_nan=False))
    @settings(max_examples=15, deadline=None)
    def test_beamformed_peak_near_target_depth(self, i_depth, offset):
        """For a target close to any focal-grid depth, the beamformed scanline
        through it peaks within a couple of depth cells of the target.  (The
        tiny test grid samples depth much more coarsely than the pulse length,
        so targets exactly between nodes can legitimately be missed — that is
        a property of the coarse grid, not of the beamformer.)"""
        spacing = float(EXACT.grid.depths[1] - EXACT.grid.depths[0])
        depth = float(EXACT.grid.depths[i_depth]) + offset * spacing
        data = SIMULATOR.simulate(point_target(depth=depth))
        i_mid = SYSTEM.volume.n_theta // 2
        rf = BEAMFORMER.beamform_scanline(data, i_mid, i_mid)
        peak_depth = float(EXACT.grid.depths[int(np.argmax(np.abs(rf)))])
        assert abs(peak_depth - depth) <= 2.5 * spacing


class TestImageFormationProperties:
    @given(scale=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_log_compression_scale_invariant(self, scale, seed):
        rng = np.random.default_rng(seed)
        image = np.abs(rng.normal(size=(8, 8))) + 1e-3
        np.testing.assert_allclose(log_compress(image),
                                   log_compress(scale * image), atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_envelope_bounds_signal_magnitude(self, seed):
        rng = np.random.default_rng(seed)
        t = np.arange(128)
        rf = np.cos(2 * np.pi * 0.12 * t) * rng.uniform(0.5, 2.0)
        env = envelope(rf)
        # The analytic-signal envelope can undershoot slightly at the edges
        # but must dominate the rectified signal away from them.
        assert np.all(env[8:-8] >= np.abs(rf[8:-8]) - 1e-6)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_nrms_scale_relationship(self, seed, scale):
        """Scaling an image by ``s`` gives an NRMS of exactly ``|1 - s|``."""
        rng = np.random.default_rng(seed)
        image = np.abs(rng.normal(size=(6, 6))) + 0.1
        np.testing.assert_allclose(
            normalized_rms_difference(image, scale * image),
            abs(1.0 - scale), rtol=1e-9)


class TestInterpolationProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_linear_interpolation_bounded_by_neighbouring_samples(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(1, 64))
        data = ChannelData(samples=samples, sampling_frequency=32e6)
        delays = rng.uniform(1.0, 62.0, 20)
        elements = np.zeros(20, dtype=int)
        values = fetch_linear(data, elements, delays)
        lower = samples[0, np.floor(delays).astype(int)]
        upper = samples[0, np.floor(delays).astype(int) + 1]
        low = np.minimum(lower, upper) - 1e-12
        high = np.maximum(lower, upper) + 1e-12
        assert np.all(values >= low) and np.all(values <= high)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_nearest_returns_actual_stored_samples(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(2, 32))
        data = ChannelData(samples=samples, sampling_frequency=32e6)
        delays = rng.uniform(0.0, 31.0, 16)
        elements = rng.integers(0, 2, 16)
        values = fetch_nearest(data, elements, delays)
        for value, element in zip(values, elements):
            assert value in samples[element]


class TestPhantomProperties:
    @given(n=st.integers(min_value=1, max_value=50),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_phantom_merge_preserves_counts(self, n, seed):
        rng = np.random.default_rng(seed)
        a = Phantom(positions=rng.normal(size=(n, 3)), amplitudes=rng.normal(size=n))
        b = point_target(depth=0.01)
        merged = a.merged_with(b)
        assert merged.scatterer_count == n + 1
        np.testing.assert_allclose(merged.positions[:n], a.positions)
