"""Property-based tests (hypothesis) for the fixed-point substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.array import FixedPointArray
from repro.fixedpoint.format import QFormat, signed, tablesteer_formats, unsigned
from repro.fixedpoint.quantize import (
    OverflowMode,
    RoundingMode,
    from_raw,
    quantize,
    to_raw,
)

formats = st.builds(
    QFormat,
    integer_bits=st.integers(min_value=1, max_value=16),
    fraction_bits=st.integers(min_value=0, max_value=16),
    signed=st.booleans(),
)

finite_floats = st.floats(min_value=-1e5, max_value=1e5,
                          allow_nan=False, allow_infinity=False)


@given(fmt=formats, value=finite_floats)
@settings(max_examples=200, deadline=None)
def test_quantize_error_bounded_by_half_lsb_inside_range(fmt, value):
    """Inside the representable range, quantisation error is <= LSB/2."""
    clipped = float(np.clip(value, fmt.min_value, fmt.max_value))
    error = abs(float(quantize(clipped, fmt)) - clipped)
    assert error <= fmt.resolution / 2 + 1e-12


@given(fmt=formats, value=finite_floats)
@settings(max_examples=200, deadline=None)
def test_quantize_result_always_representable(fmt, value):
    """Whatever the input, the quantised value lies inside the format range."""
    result = float(quantize(value, fmt))
    assert fmt.min_value - 1e-12 <= result <= fmt.max_value + 1e-12


@given(fmt=formats, value=finite_floats)
@settings(max_examples=200, deadline=None)
def test_quantize_idempotent(fmt, value):
    once = float(quantize(value, fmt))
    twice = float(quantize(once, fmt))
    assert once == twice


@given(fmt=formats, value=finite_floats)
@settings(max_examples=200, deadline=None)
def test_raw_roundtrip_identity(fmt, value):
    """to_raw -> from_raw -> to_raw is stable (raw codes do not drift)."""
    raw = to_raw(value, fmt)
    raw_again = to_raw(from_raw(raw, fmt), fmt)
    assert int(raw) == int(raw_again)


@given(fmt=formats, value=finite_floats)
@settings(max_examples=150, deadline=None)
def test_floor_rounding_never_exceeds_value(fmt, value):
    clipped = float(np.clip(value, fmt.min_value, fmt.max_value))
    result = float(quantize(clipped, fmt, rounding=RoundingMode.FLOOR))
    assert result <= clipped + 1e-12


@given(fmt=formats,
       values=st.lists(finite_floats, min_size=1, max_size=16))
@settings(max_examples=100, deadline=None)
def test_wrap_overflow_stays_in_raw_range(fmt, values):
    raw = to_raw(np.array(values), fmt, overflow=OverflowMode.WRAP)
    assert np.all(raw >= fmt.min_raw)
    assert np.all(raw <= fmt.max_raw)


@given(bits=st.integers(min_value=13, max_value=24),
       reference=st.floats(min_value=0, max_value=8000, allow_nan=False),
       correction=st.floats(min_value=-250, max_value=250, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_tablesteer_datapath_index_error_at_most_one(bits, reference, correction):
    """The paper's claim: for any operands, the fixed-point sum's rounded
    index differs from the ideal index by at most one sample."""
    ref_fmt, corr_fmt = tablesteer_formats(bits)
    ideal = np.floor(reference + correction + 0.5)
    ref_arr = FixedPointArray.from_float(np.array([reference]), ref_fmt)
    corr_arr = FixedPointArray.from_float(np.array([correction]), corr_fmt)
    hw = ref_arr.add(corr_arr).round_to_integer()[0]
    assert abs(hw - ideal) <= 1


@given(a=st.floats(min_value=0, max_value=4000, allow_nan=False),
       b=st.floats(min_value=0, max_value=4000, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_fixed_point_addition_commutative(a, b):
    fmt = unsigned(13, 5)
    x = FixedPointArray.from_float(np.array([a]), fmt)
    y = FixedPointArray.from_float(np.array([b]), fmt)
    assert x.add(y).to_float()[0] == y.add(x).to_float()[0]


@given(value=st.floats(min_value=-4000, max_value=4000, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_round_to_integer_matches_half_away_reference(value):
    fmt = signed(13, 6)
    arr = FixedPointArray.from_float(np.array([value]), fmt)
    represented = arr.to_float()[0]
    expected = np.sign(represented) * np.floor(np.abs(represented) + 0.5)
    assert arr.round_to_integer()[0] == expected
