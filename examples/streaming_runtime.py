"""Streaming runtime: beamform a moving-target cine through every backend.

Demonstrates the declarative :mod:`repro.api` surface end to end on the
scaled-down ``tiny`` preset:

1. describe the engine once as an :class:`repro.api.EngineSpec` (and show
   that the description round-trips through JSON);
2. describe the acquisition as a :class:`repro.api.ScanSpec` cine;
3. stream it through every registered execution backend (``reference``,
   ``vectorized``, ``sharded`` — and ``compiled`` where the optional numba
   JIT is installed; without it the backend reports itself unavailable and
   the example skips it) vended by one shared :class:`repro.api.Session`;
4. report per-backend volume rate, voxel rate and plan-cache behaviour —
   only the first frame of each plan-based backend pays the compile cost,
   every later frame reuses the cached :class:`BeamformingPlan`;
5. run the fast kernel path (``precision="float32"`` + batched submission)
   and verify it against the exact volumes;
6. verify that all backends found the moving target at the same voxel.

Usage::

    python examples/streaming_runtime.py
"""

from __future__ import annotations

import numpy as np

from repro.api import BACKENDS, EngineSpec, ScanSpec, Session
from repro.kernels import Precision
from repro.runtime import BackendUnavailable, PlanCache

N_FRAMES = 8


def main() -> None:
    spec = EngineSpec(system="tiny", architecture="tablesteer")
    # The whole engine description is one portable JSON document.
    assert EngineSpec.from_json(spec.to_json()) == spec

    session = Session(spec)
    scan = ScanSpec(scenario="moving_point", frames=N_FRAMES)
    print(f"Streaming a {N_FRAMES}-frame moving-point cine on the "
          f"'{session.system.name}' preset "
          f"({session.system.volume.focal_point_count} voxels/frame)")

    peak_tracks: dict[str, list[tuple[int, ...]]] = {}
    for backend in BACKENDS.names():
        # Each backend gets a private cache so its hit/miss counters are
        # directly comparable (cross-backend sharing is shown in the tests).
        try:
            service = session.service(backend=backend, cache=PlanCache())
        except BackendUnavailable as exc:
            print(f"  {backend:<10s}: skipped ({exc})")
            continue
        results = service.stream_all(scan.build_frames(session.system))
        peak_tracks[backend] = [
            np.unravel_index(int(np.argmax(np.abs(r.rf))), r.rf.shape)
            for r in results]
        stats = service.stats()
        print(f"  {backend:<10s}: {stats.frames_per_second:8.2f} frames/s  "
              f"{stats.voxels_per_second:.3e} voxels/s  "
              f"mean latency {stats.mean_latency_seconds * 1e3:6.2f} ms  "
              f"cache {stats.cache.hits} hits / {stats.cache.misses} misses")

    # The fast path: float32 kernels, 4 frames per batched execution.
    fast = session.service(backend="vectorized", cache=PlanCache(),
                           precision="float32")
    fast_results = fast.stream_all(scan.build_frames(session.system),
                                   batch_size=4)
    stats = fast.stats()
    print(f"  {'float32 x4':<10s}: {stats.frames_per_second:8.2f} frames/s  "
          f"{stats.voxels_per_second:.3e} voxels/s  "
          f"(batched, {stats.precision})")
    exact = session.service(backend="vectorized", cache=PlanCache())
    for fast_result, frame in zip(fast_results,
                                  scan.build_frames(session.system)):
        Precision.FLOAT32.tolerance.assert_allclose(
            fast_result.rf, exact.submit_frame(frame).rf)

    reference_track = peak_tracks["reference"]
    agree = all(peak_tracks[b] == reference_track
                for b in ("vectorized", "sharded"))
    depths = [int(track[2]) for track in reference_track]
    print(f"  target depth index per frame : {depths} (drifts deeper)")
    print(f"  backends agree on every peak : {agree}")


if __name__ == "__main__":
    main()
