"""Streaming runtime: beamform a moving-target cine through every backend.

Demonstrates the :mod:`repro.runtime` subsystem end to end on the
scaled-down ``tiny`` preset:

1. build a cine sequence of a point scatterer drifting in depth;
2. stream it through the ``reference``, ``vectorized`` and ``sharded``
   execution backends via the :class:`BeamformingService` facade;
3. report per-backend volume rate, voxel rate and delay-table cache
   behaviour — only the first frame of each batched backend pays the
   delay-generation cost, every later frame reuses the cached tensors;
4. verify that all backends found the moving target at the same voxel.

Usage::

    python examples/streaming_runtime.py
"""

from __future__ import annotations

import numpy as np

from repro import tiny_system
from repro.runtime import BeamformingService, DelayTableCache, moving_point_cine

N_FRAMES = 8


def main() -> None:
    system = tiny_system()
    frames = moving_point_cine(system, n_frames=N_FRAMES)
    print(f"Streaming a {N_FRAMES}-frame moving-point cine on the "
          f"'{system.name}' preset "
          f"({system.volume.focal_point_count} voxels/frame)")

    peak_tracks: dict[str, list[tuple[int, ...]]] = {}
    for backend in ("reference", "vectorized", "sharded"):
        # Each backend gets a private cache so its hit/miss counters are
        # directly comparable (cross-backend sharing is shown in the tests).
        service = BeamformingService(system, architecture="tablesteer",
                                     backend=backend,
                                     cache=DelayTableCache())
        results = service.stream_all(frames)
        peak_tracks[backend] = [
            np.unravel_index(int(np.argmax(np.abs(r.rf))), r.rf.shape)
            for r in results]
        stats = service.stats()
        print(f"  {backend:<10s}: {stats.frames_per_second:8.2f} frames/s  "
              f"{stats.voxels_per_second:.3e} voxels/s  "
              f"mean latency {stats.mean_latency_seconds * 1e3:6.2f} ms  "
              f"cache {stats.cache.hits} hits / {stats.cache.misses} misses")

    reference_track = peak_tracks["reference"]
    agree = all(peak_tracks[b] == reference_track
                for b in ("vectorized", "sharded"))
    depths = [int(track[2]) for track in reference_track]
    print(f"  target depth index per frame : {depths} (drifts deeper)")
    print(f"  backends agree on every peak : {agree}")


if __name__ == "__main__":
    main()
