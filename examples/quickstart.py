"""Quickstart: compute and compare beamforming delays with all three engines.

Runs on the scaled-down ``small`` system preset so it finishes in a couple of
seconds.  It walks through the core objects of the library:

1. build the system configuration (Table I preset);
2. instantiate the exact reference engine, TABLEFREE and TABLESTEER;
3. generate delays for one steered scanline with each of them;
4. report the delay-sample selection errors of the two hardware-friendly
   schemes against the exact computation.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import small_system
from repro.core import (
    ExactDelayEngine,
    TableFreeConfig,
    TableFreeDelayGenerator,
    TableSteerConfig,
    TableSteerDelayGenerator,
)


def main() -> None:
    system = small_system()
    print(f"System preset: {system.name}")
    print(f"  transducer        : {system.transducer.elements_x} x "
          f"{system.transducer.elements_y} elements")
    print(f"  focal grid        : {system.volume.n_theta} x "
          f"{system.volume.n_phi} x {system.volume.n_depth} points")
    print(f"  echo buffer       : {system.echo_buffer_samples} samples "
          f"({system.delay_index_bits}-bit index)")
    print(f"  delays per volume : {system.theoretical_delay_count:.2e}")
    print()

    # 1. The exact (ground truth) delay engine.
    exact = ExactDelayEngine.from_config(system)

    # 2. The two architectures proposed by the paper.
    tablefree = TableFreeDelayGenerator.from_config(
        system, TableFreeConfig(delta=0.25))
    tablesteer = TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=18))

    print(f"TABLEFREE PWL square root uses {tablefree.segment_count} segments "
          f"for delta = {tablefree.design.delta} samples")
    storage = tablesteer.storage_summary()
    print(f"TABLESTEER stores {storage['reference_entries']:.0f} reference "
          f"delays ({storage['reference_megabits']:.2f} Mb) and "
          f"{storage['correction_entries']:.0f} corrections "
          f"({storage['correction_megabits']:.2f} Mb)")
    print()

    # 3. Delays along the most steered scanline of the grid (worst case for
    #    the TABLESTEER far-field approximation).
    i_theta = system.volume.n_theta - 1
    i_phi = system.volume.n_phi - 1
    points = exact.grid.scanline_points(i_theta, i_phi)
    truth = exact.delay_indices(points)

    for name, generator in (("TABLEFREE", tablefree), ("TABLESTEER", tablesteer)):
        indices = generator.delay_indices(points)
        error = indices - truth
        print(f"{name:11s} selection error on the most steered scanline: "
              f"mean |err| = {np.mean(np.abs(error)):.3f} samples, "
              f"max |err| = {np.max(np.abs(error)):.0f} samples")

    # 4. And along the broadside-most scanline, where both schemes are nearly
    #    exact.
    i_mid = system.volume.n_theta // 2
    points = exact.grid.scanline_points(i_mid, i_mid)
    truth = exact.delay_indices(points)
    print()
    for name, generator in (("TABLEFREE", tablefree), ("TABLESTEER", tablesteer)):
        error = generator.delay_indices(points) - truth
        print(f"{name:11s} selection error near broadside:               "
              f"mean |err| = {np.mean(np.abs(error)):.3f} samples, "
              f"max |err| = {np.max(np.abs(error)):.0f} samples")


if __name__ == "__main__":
    main()
