"""Design-space exploration and hardware-artifact export.

Goes beyond the single design points of Table II:

1. sweeps the TABLEFREE clock and device size, and the TABLESTEER block
   count, to show where each architecture reaches the 15 volumes/s target;
2. sizes the smallest TABLESTEER design for several target volume rates;
3. shows how both architectures scale with the probe aperture;
4. exports the TABLESTEER tables of the scaled-down system as a packed
   ``.npz`` archive plus per-BRAM-bank initialisation images — the artifacts
   a hardware team would consume.

Usage::

    python examples/design_space.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import paper_system, small_system
from repro.hardware import (
    aperture_sweep,
    find_minimum_design,
    tablefree_device_sweep,
    tablefree_frequency_sweep,
    tablesteer_block_sweep,
)
from repro.io import export_bram_initialisation, export_tablesteer_tables


def sweeps() -> None:
    system = paper_system()
    print("1. TABLEFREE frame rate vs clock (one delay unit per element)")
    for point in tablefree_frequency_sweep(system):
        marker = " <- meets 15 fps" if point.meets_target else ""
        print(f"   {point.parameters['clock_mhz']:5.0f} MHz : "
              f"{point.frame_rate:5.1f} volumes/s{marker}")

    print("\n2. TABLEFREE supported aperture vs device size")
    for point in tablefree_device_sweep(system):
        side = point.parameters["supported_side"]
        print(f"   {point.label:26s}: {side:.0f} x {side:.0f} elements "
              f"({100 * point.lut_fraction:.0f}% of the scaled LUT budget)")

    print("\n3. TABLESTEER frame rate vs number of Fig. 4 blocks (18-bit)")
    for point in tablesteer_block_sweep(system):
        marker = " <- meets 15 fps" if point.meets_target else ""
        print(f"   {point.parameters['blocks']:4.0f} blocks : "
              f"{point.frame_rate:5.1f} volumes/s, "
              f"LUT {100 * point.lut_fraction:5.1f}%, "
              f"BRAM {100 * point.bram_fraction:4.1f}%{marker}")

    print("\n4. Smallest TABLESTEER design per target volume rate")
    for target in (10.0, 15.0, 20.0, 30.0):
        design = find_minimum_design(system, target_frame_rate=target)
        if design is None:
            print(f"   {target:4.0f} volumes/s : not reachable")
        else:
            print(f"   {target:4.0f} volumes/s : {design.parameters['blocks']:.0f} "
                  f"blocks ({100 * design.lut_fraction:.0f}% LUTs, "
                  f"{design.frame_rate:.1f} fps delivered)")

    print("\n5. Scaling with probe aperture")
    print(f"   {'side':>6s}  {'TABLEFREE LUTs':>14s}  {'fits?':>5s}  "
          f"{'TABLESTEER table':>16s}  {'fits BRAM?':>10s}")
    for row in aperture_sweep(system):
        print(f"   {row['side']:6.0f}  {100 * row['tablefree_lut_fraction']:13.0f}%  "
              f"{'yes' if row['tablefree_fits'] else 'no':>5s}  "
              f"{row['tablesteer_table_megabits_18b']:13.1f} Mb  "
              f"{'yes' if row['tablesteer_table_fits_bram'] else 'no':>10s}")


def export_artifacts(output_dir: Path) -> None:
    system = small_system()
    output_dir.mkdir(parents=True, exist_ok=True)
    archive_path = output_dir / "tablesteer_small_18b.npz"
    exported = export_tablesteer_tables(system, archive_path, total_bits=18)
    banks = export_bram_initialisation(exported, n_banks=16, bank_words=256)
    print("\n6. Hardware artifact export (small system, 18-bit)")
    print(f"   archive                : {archive_path}")
    print(f"   reference codes        : {exported.reference_raw.size} x "
          f"{exported.reference_format.describe()}")
    print(f"   correction codes       : "
          f"{exported.x_terms_raw.size + exported.y_terms_raw.size} x "
          f"{exported.correction_format.describe()}")
    print(f"   payload                : {exported.storage_bits() / 1e6:.2f} Mb")
    print(f"   BRAM init images       : {len(banks)} banks x {banks[0].size} words")


def main() -> None:
    sweeps()
    if len(sys.argv) > 1:
        export_artifacts(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            export_artifacts(Path(tmp))


if __name__ == "__main__":
    main()
