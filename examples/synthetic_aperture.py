"""Synthetic-aperture acquisition: multi-origin imaging and its table cost.

Section V of the paper notes that TABLESTEER assumes a fixed transmit origin;
synthetic-aperture schemes that move the origin between insonifications need
one reference delay table per origin ("at extra hardware cost"), whereas
TABLEFREE computes the transmit term on the fly and is indifferent to the
origin — an advantage the conclusions call out.

This example makes both halves concrete:

1. it acquires a point-target volume with a multi-origin (virtual source)
   insonification plan and coherently compounds the per-insonification
   volumes, showing the imaging chain supports synthetic aperture end to end;
2. it tabulates how the TABLESTEER reference-table storage grows with the
   number of distinct origins for the paper-scale system, versus TABLEFREE's
   constant (zero) table cost.

Usage::

    python examples/synthetic_aperture.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_system, tiny_system
from repro.acoustics import point_target
from repro.beamformer import envelope, point_spread_metrics
from repro.core import OriginSchedule, synthetic_aperture_cost_comparison
from repro.geometry import FocalGrid
from repro.pipeline import InsonificationPlan, acquisition_summary, compound_volume


def imaging_demo() -> None:
    system = tiny_system()
    grid = FocalGrid.from_config(system)
    depth = float(grid.depths[len(grid.depths) // 2])
    phantom = point_target(depth=depth)

    print("1. Multi-origin acquisition and coherent compounding")
    print(f"   system: {system.transducer.elements_x}x"
          f"{system.transducer.elements_y} elements, "
          f"{system.volume.n_theta}x{system.volume.n_phi}x"
          f"{system.volume.n_depth} focal points")
    print(f"   point target at {1e3 * depth:.1f} mm\n")

    for label, schedule, insonifications in (
            ("single centred origin", OriginSchedule.single_center(), 2),
            ("4 virtual sources",
             OriginSchedule.virtual_sources_behind_probe(system, 4), 4)):
        plan = InsonificationPlan.from_system(system, schedule=schedule,
                                              insonifications=insonifications)
        summary = acquisition_summary(system, plan)
        volume = compound_volume(system, phantom, plan)
        centre_plane = envelope(volume[:, system.volume.n_phi // 2, :], axis=1)
        axial = point_spread_metrics(centre_plane[np.argmax(
            np.max(centre_plane, axis=1))])
        print(f"   {label}:")
        print(f"     insonifications/volume : "
              f"{summary['insonifications_per_volume']:.0f} "
              f"({summary['distinct_origins']:.0f} distinct origins)")
        print(f"     axial peak index       : {axial.peak_index} "
              f"(target at {system.volume.n_depth // 2})")
        print(f"     axial FWHM             : {axial.fwhm_samples:.1f} samples")
    print()


def cost_demo() -> None:
    system = paper_system()
    print("2. Delay-table cost vs number of transmit origins (paper system)")
    rows = synthetic_aperture_cost_comparison(system, (1, 2, 4, 8, 16, 32))
    print(f"   {'origins':>8s}  {'TABLESTEER tables':>18s}  {'TABLEFREE':>10s}")
    for row in rows:
        print(f"   {row['origins']:8.0f}  "
              f"{row['tablesteer_megabits_18b']:14.1f} Mb  "
              f"{row['tablefree_megabits']:7.1f} Mb")
    print()
    print("   Off-centre origins additionally lose the four-fold symmetry")
    print("   pruning, which is why the growth is super-linear; TABLEFREE's")
    print("   cost is independent of the origin schedule (its advantage for")
    print("   advanced imaging modes, per the paper's conclusions).")


def main() -> None:
    imaging_demo()
    cost_demo()


if __name__ == "__main__":
    main()
