"""End-to-end imaging example: phantom -> echoes -> beamforming -> image.

Simulates a point-target phantom and images it with the exact, TABLEFREE
and TABLESTEER delay architectures through one shared
:class:`repro.api.Session` — the channel data are simulated once, so the
printed differences (peak location, axial/lateral resolution, normalised
RMS difference) come from delay generation alone.  Prints an ASCII
B-mode-style image of the exact-delay reconstruction.

Usage::

    python examples/imaging_point_target.py [--off-axis]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import EngineSpec, Session
from repro.acoustics import point_target
from repro.beamformer import (
    log_compress,
    normalized_rms_difference,
    point_spread_metrics,
)

ASCII_SHADES = " .:-=+*#%@"

ARCHITECTURES_TO_COMPARE = ("exact", "tablefree", "tablesteer")


def ascii_image(db_image: np.ndarray, dynamic_range: float = 40.0) -> str:
    """Render a log-compressed image as ASCII art (theta across, depth down)."""
    normalised = (db_image + dynamic_range) / dynamic_range
    normalised = np.clip(normalised, 0.0, 1.0)
    levels = (normalised * (len(ASCII_SHADES) - 1)).astype(int)
    rows = []
    for depth_row in levels.T:          # depth down the page
        rows.append("".join(ASCII_SHADES[level] for level in depth_row))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--off-axis", action="store_true",
                        help="place the target off axis (steered), where the "
                             "TABLESTEER approximation error is largest")
    args = parser.parse_args()

    session = Session(EngineSpec(system="small"))
    grid = session.grid

    # Put the target on a grid node so the comparison is purely about delays.
    i_depth = int(0.6 * len(grid.depths))
    i_theta = len(grid.thetas) - 2 if args.off_axis else len(grid.thetas) // 2
    depth = float(grid.depths[i_depth])
    theta = float(grid.thetas[i_theta])
    print(f"Point target at depth {1e3 * depth:.1f} mm, "
          f"theta {np.degrees(theta):.1f} deg")

    phantom = point_target(depth=depth, theta=theta)
    channel_data = session.acquire(phantom)
    print(f"Simulated {channel_data.element_count} channels x "
          f"{channel_data.sample_count} samples of RF data\n")

    # One acquisition, one shared grid/transducer — three delay engines.
    images = session.sweep(channel_data=channel_data,
                           architectures=ARCHITECTURES_TO_COMPARE)

    reference = images["exact"]
    for name, image in images.items():
        peak_theta, peak_depth = np.unravel_index(np.argmax(image), image.shape)
        axial = point_spread_metrics(image[peak_theta, :])
        lateral = point_spread_metrics(image[:, peak_depth])
        line = (f"{name:15s} peak at (theta {peak_theta:2d}, depth {peak_depth:3d}), "
                f"axial FWHM {axial.fwhm_samples:5.1f} px, "
                f"lateral FWHM {lateral.fwhm_samples:4.1f} px")
        if name != "exact":
            nrms = normalized_rms_difference(reference, image)
            line += f", NRMS vs exact {nrms:.3f}"
        print(line)

    print("\nExact-delay image (theta across, depth down, 40 dB range):\n")
    print(ascii_image(log_compress(reference, 40.0)))


if __name__ == "__main__":
    main()
