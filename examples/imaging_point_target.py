"""End-to-end imaging example: phantom -> echoes -> beamforming -> image.

Simulates a point-target phantom, beamforms it with exact, TABLEFREE and
TABLESTEER delays, and prints an ASCII B-mode-style image plus quantitative
comparisons (peak location, axial/lateral resolution, normalised RMS
difference) — the end-to-end counterpart of the paper's accuracy analysis.

Usage::

    python examples/imaging_point_target.py [--off-axis]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import small_system
from repro.acoustics import EchoSimulator, point_target
from repro.beamformer import (
    DelayAndSumBeamformer,
    envelope,
    log_compress,
    normalized_rms_difference,
    point_spread_metrics,
    reconstruct_plane,
)
from repro.core import (
    ExactDelayEngine,
    TableFreeDelayGenerator,
    TableSteerConfig,
    TableSteerDelayGenerator,
)

ASCII_SHADES = " .:-=+*#%@"


def ascii_image(db_image: np.ndarray, dynamic_range: float = 40.0) -> str:
    """Render a log-compressed image as ASCII art (theta across, depth down)."""
    normalised = (db_image + dynamic_range) / dynamic_range
    normalised = np.clip(normalised, 0.0, 1.0)
    levels = (normalised * (len(ASCII_SHADES) - 1)).astype(int)
    rows = []
    for depth_row in levels.T:          # depth down the page
        rows.append("".join(ASCII_SHADES[level] for level in depth_row))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--off-axis", action="store_true",
                        help="place the target off axis (steered), where the "
                             "TABLESTEER approximation error is largest")
    args = parser.parse_args()

    system = small_system()
    exact = ExactDelayEngine.from_config(system)
    grid = exact.grid

    # Put the target on a grid node so the comparison is purely about delays.
    i_depth = int(0.6 * len(grid.depths))
    i_theta = len(grid.thetas) - 2 if args.off_axis else len(grid.thetas) // 2
    depth = float(grid.depths[i_depth])
    theta = float(grid.thetas[i_theta])
    print(f"Point target at depth {1e3 * depth:.1f} mm, "
          f"theta {np.degrees(theta):.1f} deg")

    phantom = point_target(depth=depth, theta=theta)
    channel_data = EchoSimulator.from_config(system).simulate(phantom)
    print(f"Simulated {channel_data.element_count} channels x "
          f"{channel_data.sample_count} samples of RF data\n")

    providers = {
        "exact": exact,
        "TABLEFREE": TableFreeDelayGenerator.from_config(system),
        "TABLESTEER-18b": TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=18)),
    }

    images = {}
    for name, provider in providers.items():
        beamformer = DelayAndSumBeamformer(system, provider)
        rf = reconstruct_plane(beamformer, channel_data)
        images[name] = envelope(rf, axis=1)

    reference = images["exact"]
    for name, image in images.items():
        peak_theta, peak_depth = np.unravel_index(np.argmax(image), image.shape)
        axial = point_spread_metrics(image[peak_theta, :])
        lateral = point_spread_metrics(image[:, peak_depth])
        line = (f"{name:15s} peak at (theta {peak_theta:2d}, depth {peak_depth:3d}), "
                f"axial FWHM {axial.fwhm_samples:5.1f} px, "
                f"lateral FWHM {lateral.fwhm_samples:4.1f} px")
        if name != "exact":
            nrms = normalized_rms_difference(reference, image)
            line += f", NRMS vs exact {nrms:.3f}"
        print(line)

    print("\nExact-delay image (theta across, depth down, 40 dB range):\n")
    print(ascii_image(log_compress(reference, 40.0)))


if __name__ == "__main__":
    main()
