"""FPGA feasibility study: reproduce the paper's Table II and Section V-B sizing.

Prints, for the full paper-scale system (100 x 100 elements, 128 x 128 x 1000
focal points, 15 volumes/s target):

* the scale of the naive precomputed-table approach (Section II);
* the storage and DRAM-bandwidth budget of TABLESTEER (Section V-B);
* the Table II comparison of TABLEFREE vs TABLESTEER-14b/-18b on a Virtex-7
  XC7VX1140T, using the analytical resource model;
* the UltraScale projection of Section VI-B.

Usage::

    python examples/fpga_feasibility.py
"""

from __future__ import annotations

from repro import paper_system
from repro.experiments import e01_requirements, e07_storage, e08_table2
from repro.hardware import (
    paper_block_array,
    required_delay_rate,
    tablefree_throughput,
    virtex_ultrascale_projection,
)
from repro.hardware.report import tablefree_row


def main() -> None:
    system = paper_system()

    print("=" * 72)
    print("1. The problem: naive delay tables (Section II)")
    print("=" * 72)
    e01_requirements.main()

    print()
    print("=" * 72)
    print("2. TABLESTEER storage and bandwidth budget (Section V-B)")
    print("=" * 72)
    e07_storage.main()

    print()
    print("=" * 72)
    print("3. Table II: architecture comparison on the Virtex-7 XC7VX1140T")
    print("=" * 72)
    result = e08_table2.run(system)
    print(result["formatted"])

    print()
    print("=" * 72)
    print("4. Throughput headroom and technology projection")
    print("=" * 72)
    array = paper_block_array()
    required = required_delay_rate(system)
    print(f"  required delay rate        : {required:.2e} delays/s")
    print(f"  TABLESTEER peak at 200 MHz : "
          f"{array.peak_delay_rate(200e6):.2e} delays/s "
          f"({array.peak_delay_rate(200e6) / required:.2f}x headroom)")
    for clock in (167e6, 200e6, 250e6, 330e6):
        report = tablefree_throughput(system, n_units=10_000, clock_hz=clock)
        print(f"  TABLEFREE at {clock / 1e6:5.0f} MHz      : "
              f"{report.achievable_frame_rate:5.1f} volumes/s "
              f"({'meets' if report.meets_target else 'misses'} the 15 fps target)")
    ultrascale = tablefree_row(system, device=virtex_ultrascale_projection())
    print(f"  UltraScale projection       : TABLEFREE fits "
          f"{ultrascale.supported_channels[0]}x{ultrascale.supported_channels[1]} "
          f"channels in one device")


if __name__ == "__main__":
    main()
