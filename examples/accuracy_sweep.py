"""Accuracy / resource trade-off sweeps for both delay architectures.

The paper points out that both schemes expose accuracy knobs:

* TABLEFREE — the PWL error bound ``delta`` (fewer segments and less LUT
  area for a larger delta) and the fixed-point precision;
* TABLESTEER — the total fixed-point width (13 / 14 / 18 bits), which trades
  BRAM bits and DRAM bandwidth against the fraction of echo samples selected
  one sample off.

This example sweeps both knobs on the scaled-down ``small`` system and prints
the resulting accuracy alongside the storage / LUT cost, reproducing the
trade-off curves behind Table II's "Inaccuracy" column.

Usage::

    python examples/accuracy_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_system, small_system
from repro.analysis import evaluate_provider, fixed_point_impact, sample_volume_points
from repro.core import (
    TableFreeConfig,
    TableFreeDelayGenerator,
    TableSteerConfig,
    TableSteerDelayGenerator,
)
from repro.fixedpoint import tablesteer_formats
from repro.hardware import TableSteerCostModel, virtex7_xc7vx1140t


def tablefree_sweep(system, points) -> None:
    print("TABLEFREE: PWL error bound (delta) sweep")
    print(f"  {'delta':>8s}  {'segments':>8s}  {'mean |err|':>10s}  "
          f"{'max |err|':>9s}")
    for delta in (1.0, 0.5, 0.25, 0.125, 0.0625):
        generator = TableFreeDelayGenerator.from_config(
            system, TableFreeConfig(delta=delta))
        report = evaluate_provider(generator, system, f"delta={delta}",
                                   points=points)
        stats = report.all_points
        print(f"  {delta:8.4f}  {generator.segment_count:8d}  "
              f"{stats.mean_abs:10.4f}  {stats.max_abs:9.1f}")
    print()


def tablesteer_sweep(system, points) -> None:
    print("TABLESTEER: fixed-point width sweep")
    device = virtex7_xc7vx1140t()
    cost_model = TableSteerCostModel()
    paper = paper_system()
    quadrant_entries = ((paper.transducer.elements_x // 2)
                        * (paper.transducer.elements_y // 2)
                        * paper.volume.n_depth)
    print(f"  {'bits':>5s}  {'mean |err|':>10s}  {'max |err|':>9s}  "
          f"{'affected %':>10s}  {'table Mb':>8s}  {'LUT %':>6s}")
    for bits in (13, 14, 16, 18, 20):
        generator = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=bits))
        report = evaluate_provider(generator, system, f"{bits}b", points=points)
        impact = fixed_point_impact(bits, n_samples=200_000)
        ref_fmt, _ = tablesteer_formats(bits)
        table_megabits = quadrant_entries * ref_fmt.total_bits / 1e6
        demand = cost_model.demand(bits, 128, 8, 16, correction_storage_bits=0)
        stats = report.all_points
        print(f"  {bits:5d}  {stats.mean_abs:10.4f}  {stats.max_abs:9.1f}  "
              f"{100 * impact.affected_fraction:10.2f}  {table_megabits:8.1f}  "
              f"{100 * demand.luts / device.luts:6.1f}")
    print()


def main() -> None:
    system = small_system()
    points = sample_volume_points(system, max_points=400, seed=17)
    print(f"Accuracy sweeps on the '{system.name}' system "
          f"({len(points)} sampled focal points x "
          f"{system.transducer.element_count} elements)\n")
    tablefree_sweep(system, points)
    tablesteer_sweep(system, points)
    print("Notes:")
    print("  * 'affected %' is the fraction of echo-sample selections changed by")
    print("    fixed-point storage (paper: ~33% at 13 bits, <2% at 18 bits).")
    print("  * 'table Mb' is the paper-scale reference-table footprint at that width.")
    print("  * 'LUT %' is the paper-scale TABLESTEER adder-array cost on the")
    print("    Virtex-7 XC7VX1140T from the analytical resource model.")


if __name__ == "__main__":
    main()
