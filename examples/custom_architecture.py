"""Registering a custom delay architecture — the registry extension point.

The paper studies a closed family of delay-generation architectures; the
:mod:`repro.api` registries make that family open.  This example adds a toy
architecture — exact delays with a constant extra offset, modelling e.g. an
uncompensated fixed pipeline latency — in ~10 lines, then runs it through
the full imaging pipeline and streaming service *without modifying any
repro module*:

1. define an options dataclass (this is also the JSON schema of the knob);
2. register a factory under a public name with ``@ARCHITECTURES.register``;
3. name the architecture in an :class:`repro.api.EngineSpec` like any
   built-in — pipelines, services, sweeps, spec files and the CLI all
   resolve it through the registry.

Usage::

    python examples/custom_architecture.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import ARCHITECTURES, EngineSpec, Session
from repro.acoustics import point_target
from repro.core import ExactDelayEngine
from repro.core.bulk import BulkDelayProviderMixin


# ----------------------------------------------------- the custom plugin
@dataclass(frozen=True)
class OffsetOptions:
    """Design knobs of the toy architecture (doubles as its spec schema)."""

    offset_samples: float = 2.0
    """Constant delay offset added to every (point, element) pair."""


class OffsetDelayEngine(BulkDelayProviderMixin):
    """Exact delays plus a constant offset — a minimal ``DelayProvider``."""

    def __init__(self, inner: ExactDelayEngine, offset_samples: float) -> None:
        self.inner = inner
        self.grid = inner.grid
        self.offset_samples = offset_samples

    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        return self.inner.delays_samples(points) + self.offset_samples

    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        return self.inner.scanline_delays_samples(i_theta, i_phi) \
            + self.offset_samples

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        return self.inner.nappe_delays_samples(i_depth) + self.offset_samples


def register() -> None:
    """Register ``exact_offset`` (idempotent so re-imports keep working)."""
    if "exact_offset" in ARCHITECTURES:
        return

    @ARCHITECTURES.register(
        "exact_offset", options=OffsetOptions,
        description="exact delays plus a constant offset (toy plugin)")
    def _build(system, options):
        return OffsetDelayEngine(ExactDelayEngine.from_config(system),
                                 options.offset_samples)


# ------------------------------------------------------------ demo drive
def main() -> None:
    register()

    # One depth pixel of the tiny grid is ~40 samples two-way, so a
    # 40-sample uncompensated latency should displace the peak visibly.
    offset = 40.0
    spec = EngineSpec(system="tiny", architecture="exact_offset",
                      architecture_options={"offset_samples": offset})
    print("Engine spec (portable JSON):")
    print(spec.to_json())

    session = Session(spec)
    depth = float(session.grid.depths[len(session.grid.depths) // 2])
    phantom = point_target(depth=depth)

    # The plugin flows through sweep/pipeline/service like any built-in.
    images = session.sweep(phantom, architectures=("exact", "exact_offset"))
    peaks = {name: np.unravel_index(int(np.argmax(img)), img.shape)
             for name, img in images.items()}
    shift = peaks["exact_offset"][1] - peaks["exact"][1]
    print(f"\nPeak depth index: exact={peaks['exact'][1]}, "
          f"exact_offset={peaks['exact_offset'][1]} "
          f"(shifted {shift} px by the {offset}-sample offset)")

    service = session.service(backend="vectorized")
    result = service.submit_frame(phantom)
    print(f"Streamed one frame through architecture "
          f"'{service.architecture}' on backend '{result.backend}': "
          f"volume {result.rf.shape}, "
          f"latency {result.latency_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
